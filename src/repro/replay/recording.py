"""The recording artifact: what a recorded run leaves behind.

A :class:`Recording` bundles everything the debugger needs to time-travel:

* the exact :class:`~repro.dse.config.ClusterConfig` (runs are pure
  functions of it — this *is* the replay's source of truth),
* the workload identity (:class:`WorkloadSpec`), so a manifest loaded in a
  fresh process can re-launch the same application,
* the checkpoint ring's retained slots and the full waypoint history,
* the event-log tail, the recorded spans, and the final outcome
  (simulated end time, elapsed, and a fingerprint of the return values).

Recordings round-trip through a JSON manifest (:meth:`Recording.save` /
:meth:`Recording.load`): float timestamps survive exactly (JSON uses
``repr``-faithful shortest-roundtrip formatting) and snapshot arrays are
base64 of their raw float64 bytes.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..dse.config import ClusterConfig
from ..dse.runtime import RunResult, run_parallel
from ..errors import ReplayError
from ..network.topology import FabricConfig
from .config import ReplayConfig
from .ring import RingSlot

__all__ = [
    "WorkloadSpec",
    "ReplayAnchor",
    "Recording",
    "record",
    "fingerprint_returns",
]

_MANIFEST_FORMAT = "repro-replay-1"


# -- final-state fingerprinting ---------------------------------------------
def _feed(h, value: Any) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"nd")
        h.update(repr(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        h.update(b"{")
        for key in sorted(value, key=repr):
            h.update(repr(key).encode())
            h.update(b"=")
            _feed(h, value[key])
        h.update(b"}")
    elif isinstance(value, (list, tuple)):
        h.update(b"[")
        for item in value:
            _feed(h, item)
        h.update(b"]")
    else:
        h.update(repr(value).encode())


def fingerprint_returns(value: Any) -> str:
    """sha256 over a run's return values (ndarray-aware, order-stable)."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()


# -- workload identity -------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Importable identity of the recorded application.

    ``ck_style`` marks the resilient-workload calling convention
    ``worker(api, ck, *args)`` — the recorder's snapshot-restore path can
    only fast-jump workloads that know how to resume from a checkpoint
    state, exactly like :func:`repro.resilience.runner.run_resilient`.
    """

    module: str
    attr: str
    args: tuple = ()
    ck_style: bool = False
    label: str = ""

    def resolve(self) -> Callable:
        mod = importlib.import_module(self.module)
        try:
            return getattr(mod, self.attr)
        except AttributeError:
            raise ReplayError(
                f"workload {self.module}.{self.attr} not found"
            ) from None

    def make_entry(self, ck: Any = None) -> Callable:
        """The SPMD entry for this workload, binding ``ck`` when ck-style."""
        fn = self.resolve()
        if not self.ck_style:
            return fn

        def entry(api, *args):
            return (yield from fn(api, ck, *args))

        entry.__name__ = getattr(fn, "__name__", self.attr)
        return entry


@dataclass(frozen=True)
class ReplayAnchor:
    """Where a span lives in replay coordinates: (snapshot, offset)."""

    span_id: int
    name: str
    time: float               #: the span's start in simulated seconds
    slot_seq: Optional[int]   #: nearest retained snapshot at or before it
    offset: float             #: seconds from that snapshot to the span


# -- config (de)serialisation -------------------------------------------------
def config_to_dict(config: ClusterConfig) -> dict:
    from ..resilience.config import ResilienceConfig  # noqa: F401 (doc link)

    return {
        "platform": config.platform.name,
        "platforms": (
            [p.name for p in config.platforms]
            if config.platforms is not None
            else None
        ),
        "n_processors": config.n_processors,
        "n_machines": config.n_machines,
        "fabric": {
            "kind": config.fabric.kind,
            "rate_bps": config.fabric.rate_bps,
            "cut_through": config.fabric.cut_through,
            "forward_latency": config.fabric.forward_latency,
        },
        "transport": config.transport,
        "coherence": config.coherence,
        "total_gm_words": config.total_gm_words,
        "block_words": config.block_words,
        "gmem_batching": config.gmem_batching,
        "seed": config.seed,
        "trace": config.trace,
        "obs_trace": config.obs_trace,
        "obs_metrics_interval": config.obs_metrics_interval,
        "obs_span_limit": config.obs_span_limit,
        "sanitize": (
            list(config.sanitize)
            if isinstance(config.sanitize, tuple)
            else config.sanitize
        ),
        "resilience": (
            asdict(config.resilience) if config.resilience is not None else None
        ),
        "replay": asdict(config.replay) if config.replay is not None else None,
    }


def config_from_dict(d: dict) -> ClusterConfig:
    from ..hardware.platforms import get_platform

    resilience = None
    if d.get("resilience") is not None:
        from ..resilience.config import ResilienceConfig

        resilience = ResilienceConfig(**d["resilience"])
    replay = None
    if d.get("replay") is not None:
        replay = ReplayConfig(**d["replay"])
    sanitize = d.get("sanitize", False)
    if isinstance(sanitize, list):
        sanitize = tuple(sanitize)
    return ClusterConfig(
        platform=get_platform(d["platform"]),
        platforms=(
            tuple(get_platform(name) for name in d["platforms"])
            if d.get("platforms")
            else None
        ),
        n_processors=d["n_processors"],
        n_machines=d["n_machines"],
        fabric=FabricConfig(**d["fabric"]),
        transport=d["transport"],
        coherence=d["coherence"],
        total_gm_words=d["total_gm_words"],
        block_words=d["block_words"],
        gmem_batching=d["gmem_batching"],
        seed=d["seed"],
        trace=d["trace"],
        obs_trace=d["obs_trace"],
        obs_metrics_interval=d["obs_metrics_interval"],
        obs_span_limit=d["obs_span_limit"],
        sanitize=sanitize,
        resilience=resilience,
        replay=replay,
    )


# -- the recording ------------------------------------------------------------
class Recording:
    """A finished recorded run (see module docs)."""

    def __init__(
        self,
        config: ClusterConfig,
        spec: Optional[WorkloadSpec],
        slots: List[RingSlot],
        waypoints: List[dict],
        evictions: int,
        tail: List[dict],
        tail_dropped: int,
        spans: List[dict],
        spans_dropped: int,
        final: dict,
        ckpt_stats: Dict[str, float],
        returns: Any = None,
    ):
        self.config = config
        self.spec = spec
        self.slots = slots
        self.waypoints = waypoints
        self.evictions = evictions
        self.tail = tail
        self.tail_dropped = tail_dropped
        self.spans = spans
        self.spans_dropped = spans_dropped
        self.final = final
        self.ckpt_stats = ckpt_stats
        #: in-memory only (not saved): the original run's return values
        self.returns = returns

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_run(cls, result: RunResult, spec: Optional[WorkloadSpec]) -> "Recording":
        cluster = result.cluster
        rec = getattr(cluster, "replay", None)
        if rec is None:
            raise ReplayError(
                "run was not recorded — pass ClusterConfig(replay=ReplayConfig(...))"
            )
        spans = [
            {
                "id": s.ctx.span_id,
                "trace": s.ctx.trace_id,
                "parent": s.parent_id,
                "name": s.name,
                "cat": s.cat,
                "pid": s.pid,
                "tid": s.tid,
                "start": s.start,
                "end": s.end,
                "phase": s.phase,
            }
            for s in cluster.obs.spans
        ]
        final = {
            "elapsed": result.elapsed,
            "end_time": cluster.sim.now,
            "sim_events": result.sim_events,
            "fingerprint": fingerprint_returns(result.returns),
        }
        return cls(
            config=result.config,
            spec=spec,
            slots=list(rec.ring.slots),
            waypoints=list(rec.ring.waypoints),
            evictions=rec.ring.evictions,
            tail=list(rec.tail),
            tail_dropped=rec.tail_dropped,
            spans=spans,
            spans_dropped=cluster.obs.dropped,
            final=final,
            ckpt_stats=cluster.ckpt_stats.snapshot(),
            returns=result.returns,
        )

    # -- queries --------------------------------------------------------------
    @property
    def end_time(self) -> float:
        return self.final["end_time"]

    def nearest_slot(self, time: float) -> Optional[RingSlot]:
        """Latest retained snapshot committed at or before ``time``."""
        best = None
        for slot in self.slots:
            if slot.time <= time:
                best = slot
        return best

    def span(self, span_id: int) -> dict:
        for s in self.spans:
            if s["id"] == span_id:
                return s
        raise ReplayError(
            f"span {span_id} is not in the recording "
            f"({len(self.spans)} spans; was obs_trace=True set?)"
        )

    def worst_span(self, name: str) -> dict:
        """The longest recorded span with ``name`` (the p999-outlier jump)."""
        matches = [s for s in self.spans if s["name"] == name]
        if not matches:
            names = sorted({s["name"] for s in self.spans})
            raise ReplayError(
                f"no spans named {name!r} in the recording; recorded names: "
                f"{', '.join(names[:12]) or '(none — was obs_trace=True set?)'}"
            )
        def duration(s):
            end = s["end"] if s["end"] is not None else s["start"]
            return end - s["start"]
        return max(matches, key=duration)

    def anchor(self, span_id: int) -> ReplayAnchor:
        """Replay coordinates for a span: nearest snapshot + time offset."""
        s = self.span(span_id)
        t = s["start"]
        slot = self.nearest_slot(t)
        return ReplayAnchor(
            span_id=span_id,
            name=s["name"],
            time=t,
            slot_seq=slot.seq if slot is not None else None,
            offset=t - slot.time if slot is not None else t,
        )

    # -- persistence ----------------------------------------------------------
    def save(self, path) -> None:
        """Write the manifest (JSON; arrays as base64 float64 bytes)."""
        slots = [
            {
                "seq": slot.seq,
                "version": slot.version,
                "time": slot.time,
                "fingerprint": slot.fingerprint,
                "states": {str(r): slot.states[r] for r in sorted(slot.states)},
                "slices": {
                    str(r): base64.b64encode(
                        np.ascontiguousarray(slot.slices[r]).tobytes()
                    ).decode("ascii")
                    for r in sorted(slot.slices)
                },
            }
            for slot in self.slots
        ]
        doc = {
            "format": _MANIFEST_FORMAT,
            "config": config_to_dict(self.config),
            "spec": asdict(self.spec) if self.spec is not None else None,
            "waypoints": self.waypoints,
            "evictions": self.evictions,
            "slots": slots,
            "tail": self.tail,
            "tail_dropped": self.tail_dropped,
            "spans": self.spans,
            "spans_dropped": self.spans_dropped,
            "final": self.final,
            "ckpt_stats": self.ckpt_stats,
        }
        Path(path).write_text(json.dumps(doc, default=repr) + "\n")

    @classmethod
    def load(cls, path) -> "Recording":
        doc = json.loads(Path(path).read_text())
        if doc.get("format") != _MANIFEST_FORMAT:
            raise ReplayError(
                f"{path}: not a replay manifest (format={doc.get('format')!r})"
            )
        spec = None
        if doc.get("spec") is not None:
            d = dict(doc["spec"])
            d["args"] = tuple(d.get("args", ()))
            spec = WorkloadSpec(**d)
        slots = [
            RingSlot(
                seq=s["seq"],
                version=s["version"],
                time=s["time"],
                states={int(r): v for r, v in s["states"].items()},
                slices={
                    int(r): np.frombuffer(
                        base64.b64decode(b), dtype=np.float64
                    ).copy()
                    for r, b in s["slices"].items()
                },
                fingerprint=s["fingerprint"],
            )
            for s in doc["slots"]
        ]
        return cls(
            config=config_from_dict(doc["config"]),
            spec=spec,
            slots=slots,
            waypoints=doc["waypoints"],
            evictions=doc["evictions"],
            tail=doc["tail"],
            tail_dropped=doc["tail_dropped"],
            spans=doc["spans"],
            spans_dropped=doc["spans_dropped"],
            final=doc["final"],
            ckpt_stats=doc["ckpt_stats"],
        )


def record(
    config: ClusterConfig,
    spec: Optional[WorkloadSpec] = None,
    worker: Optional[Callable] = None,
    args: tuple = (),
) -> Recording:
    """Run a workload to completion under recording; returns the Recording.

    Pass either a :class:`WorkloadSpec` (replayable from a manifest) or a
    bare ``worker`` generator function (in-memory replay only).
    """
    if config.replay is None:
        raise ReplayError(
            "recording needs ClusterConfig(replay=ReplayConfig(...)); "
            "pass --record to dse-experiments replay, or set replay= in code"
        )
    if spec is not None:
        entry = spec.make_entry(None)
        args = spec.args
    elif worker is not None:
        entry = worker
    else:
        raise ReplayError("record() needs a WorkloadSpec or a worker callable")
    result = run_parallel(config, entry, args=args)
    return Recording.from_run(result, spec)
