"""Live mode: stream a running simulation's vitals as they happen.

``dse-experiments live`` drives a workload in bounded simulated-time
increments (via :class:`~repro.dse.runtime.LaunchedRun`) and, after each
increment, emits one JSON line — cluster metrics, checkpoint-ring state,
and a span summary — to a JSONL file (tail it with ``tail -f``) and/or to
every TCP client connected to a local port.  The stream is driven purely
by *simulated* time; no wall-clock reads anywhere (the determinism lint
enforces this for the whole package).

Line types:

* ``topology`` — once, first: machines, platforms, kernel placement, fabric
* ``sample``   — per increment: simulated time + ``stats_snapshot()`` +
  span/checkpoint summaries
* ``final``    — once, last: elapsed simulated time and outcome summary
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Dict, List, Optional, TextIO

from ..dse.config import ClusterConfig
from ..dse.runtime import RunResult, launch_parallel
from ..errors import ReplayError

__all__ = ["LiveSink", "live_run"]


class LiveSink:
    """Fan one JSON-line stream out to a file and/or TCP clients.

    The TCP side is strictly non-blocking and best-effort: clients are
    accepted opportunistically at each emit, and a client that stalls or
    disconnects is dropped — a slow consumer must never stall the
    simulation."""

    def __init__(self, path: Optional[str] = None, port: Optional[int] = None):
        self._file: Optional[TextIO] = open(path, "w") if path else None
        self._server: Optional[socket.socket] = None
        self._clients: List[socket.socket] = []
        self.lines = 0
        self.port: Optional[int] = None
        if port is not None:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind(("127.0.0.1", port))
            server.listen(8)
            server.setblocking(False)
            self._server = server
            self.port = server.getsockname()[1]

    def _accept(self) -> None:
        if self._server is None:
            return
        while True:
            try:
                client, _addr = self._server.accept()
            except (BlockingIOError, OSError):
                return
            client.setblocking(False)
            self._clients.append(client)

    def emit(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, default=repr) + "\n"
        self.lines += 1
        if self._file is not None:
            self._file.write(line)
            self._file.flush()
        self._accept()
        if self._clients:
            payload = line.encode()
            alive = []
            for client in self._clients:
                try:
                    client.sendall(payload)
                    alive.append(client)
                except OSError:
                    client.close()
            self._clients = alive

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        for client in self._clients:
            client.close()
        self._clients = []
        if self._server is not None:
            self._server.close()
            self._server = None


def _span_summary(obs, limit: int = 5) -> Dict[str, Any]:
    counts: Dict[str, int] = {}
    for span in obs.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    return {"total": len(obs.spans), "dropped": obs.dropped, "top": dict(top)}


def _topology_line(cluster) -> Dict[str, Any]:
    config = cluster.config
    return {
        "type": "topology",
        "machines": [
            {
                "hostname": m.hostname,
                "platform": m.platform.name,
                "kernels": config.kernels_on(idx),
            }
            for idx, m in enumerate(cluster.machines)
        ],
        "n_processors": config.n_processors,
        "fabric": {
            "kind": config.fabric.kind,
            "rate_bps": config.fabric.rate_bps,
        },
        "transport": config.transport,
        "coherence": config.coherence,
        "seed": config.seed,
    }


def live_run(
    config: ClusterConfig,
    worker: Callable,
    args: tuple = (),
    sink: Optional[LiveSink] = None,
    every: float = 0.05,
) -> RunResult:
    """Run ``worker`` SPMD, emitting a sample every ``every`` simulated
    seconds; returns the ordinary :class:`RunResult`.

    The increments advance the same event loop a plain run uses — only the
    observation points differ — so the return values and the elapsed
    simulated time are identical to an unstreamed run of the same config
    (the final clock may rest up to one sample interval past the last
    event, because the last increment's horizon is a deadline).
    """
    if every <= 0:
        raise ReplayError("live sample interval must be positive")
    if sink is None:
        sink = LiveSink()
    launched = launch_parallel(config, worker, args=args)
    cluster = launched.cluster
    sim = cluster.sim
    sink.emit(_topology_line(cluster))
    while not launched.done:
        pending = sim.peek()
        if pending == float("inf"):
            break
        # Advance at least one event horizon: never overshoot past the
        # final event (that would leave the clock beyond the run's end).
        target = max(launched.now + every, pending)
        launched.run_to(target)
        sample: Dict[str, Any] = {
            "type": "sample",
            "time": sim.now,
            "stats": cluster.stats_snapshot(),
            "spans": _span_summary(cluster.obs),
        }
        rec = cluster.replay
        if rec is not None:
            sample["ckpt"] = {
                "commits": rec.commits,
                "retained": len(rec.ring),
                "evictions": rec.ring.evictions,
            }
        sink.emit(sample)
    result = launched.finish()
    sink.emit(
        {
            "type": "final",
            "time": sim.now,
            "elapsed": result.elapsed,
            "sim_events": result.sim_events,
            "ranks": sorted(result.returns),
        }
    )
    return result
