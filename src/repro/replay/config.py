"""Configuration for the record/replay debugger.

A :class:`ReplayConfig` attached to :class:`~repro.dse.config.ClusterConfig`
turns on *recording*: the run keeps a bounded ring of barrier-aligned
cluster snapshots plus an event-log tail, enough to seek back to any
simulated instant afterwards.  Like every other subsystem config in the
repo it is a frozen dataclass so a recording's provenance is hashable and
serialisable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

__all__ = ["ReplayConfig"]


@dataclass(frozen=True)
class ReplayConfig:
    """Tuning knobs for recording mode.

    ring_size
        How many committed snapshots the checkpoint ring retains; older
        ones are evicted (their waypoint fingerprints are kept forever —
        they cost a hash, not a copy).
    snapshot_interval
        Minimum simulated seconds between *retained* snapshots.  Apps call
        ``api.checkpoint(...)`` at their own cadence; the recorder skips
        ring retention for calls that arrive sooner than this (it still
        fingerprints them as waypoints).  ``0.0`` retains every call.
    charge_bps
        Simulated stable-storage bandwidth charged per snapshot slice.
        The default ``0.0`` makes recording free in simulated time, so a
        recorded run stays timing-comparable with an unrecorded one; set
        it to model checkpoint I/O cost (the resilience subsystem charges
        its own ``checkpoint_bps`` when both are active).
    log_limit
        Cap on the event-log tail (entries since the last retained
        snapshot); ``None`` is unbounded.
    """

    ring_size: int = 4
    snapshot_interval: float = 0.0
    charge_bps: float = 0.0
    log_limit: Optional[int] = 4096

    def validate(self) -> None:
        if self.ring_size < 1:
            raise ConfigurationError("replay ring_size must be >= 1")
        if self.snapshot_interval < 0:
            raise ConfigurationError("replay snapshot_interval must be >= 0")
        if self.charge_bps < 0:
            raise ConfigurationError("replay charge_bps must be >= 0")
        if self.log_limit is not None and self.log_limit < 0:
            raise ConfigurationError("replay log_limit must be >= 0 or None")
