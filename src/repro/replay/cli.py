"""CLI faces of the time-travel debugger: ``replay`` and ``live``.

Installed under ``dse-experiments``::

    # record a run, save the manifest, then jump to a simulated instant
    dse-experiments replay --workload gauss-seidel --record run.replay \\
        --at 0.002

    # re-load a manifest and jump to the worst p999 outlier's moment
    dse-experiments replay --load run.replay --worst api.gm_read

    # seek, then resume to completion and assert bit-identity
    dse-experiments replay --at 0.001 --resume

    # REPL-ish inspection (state / queues / gmem / spans / step / ...)
    dse-experiments replay --at 0.001 --interactive

    # stream a run's vitals as JSON lines while it executes
    dse-experiments live --workload gauss-seidel --out live.jsonl --every 0.001
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..errors import ReplayError, ReproError
from .config import ReplayConfig
from .recording import Recording, WorkloadSpec, record
from .session import ReplaySession

__all__ = ["replay_main", "live_main"]

#: workload key -> replayable WorkloadSpec (ck-style entries also support
#: the snapshot-restore fast path)
_REPLAY_WORKLOADS = {
    "gauss-seidel": WorkloadSpec(
        module="repro.resilience.workloads",
        attr="resilient_gauss_seidel",
        args=(48, 3, 7, True),
        ck_style=True,
        label="gauss-seidel",
    ),
    "knights-tour": WorkloadSpec(
        module="repro.apps.knights_tour",
        attr="knights_tour_worker",
        args=(6,),
        label="knights-tour",
    ),
    "dct2": WorkloadSpec(
        module="repro.apps.dct2",
        attr="dct2_worker",
        args=(32, 8, 0.25, 11, False),
        label="dct2",
    ),
}


def _build_config(args, spec_replay: Optional[ReplayConfig] = None):
    from ..dse.config import ClusterConfig
    from ..hardware.platforms import get_platform

    return ClusterConfig(
        platform=get_platform(args.platform),
        n_processors=args.processors,
        seed=args.seed,
        obs_trace=not args.no_obs,
        replay=spec_replay
        if spec_replay is not None
        else ReplayConfig(
            ring_size=args.ring,
            snapshot_interval=args.interval,
            charge_bps=args.charge_bps,
        ),
    )


def _print_recording(recording: Recording) -> None:
    final = recording.final
    kept = [(s.seq, s.time) for s in recording.slots]
    print(
        f"recorded: elapsed {final['elapsed']:.6f}s simulated, "
        f"end t={final['end_time']:.6f}s, {final['sim_events']} events"
    )
    print(
        f"checkpoint ring: {len(recording.waypoints)} commits, "
        f"{len(recording.slots)} retained "
        f"{[f's{q} @{t:.5f}' for q, t in kept]}, "
        f"{recording.evictions} evicted"
    )
    print(
        f"spans: {len(recording.spans)} recorded"
        + (f" ({recording.spans_dropped} dropped)" if recording.spans_dropped else "")
    )
    if not recording.spans:
        print(
            "hint: no spans were recorded, so --span/--worst cannot anchor "
            "a seek — drop --no-obs to record spans"
        )


def _print_state(session: ReplaySession) -> None:
    state = session.state()
    nxt = state["next_event_time"]
    nxt_text = "none (drained)" if nxt == float("inf") else f"t={nxt:.9g}"
    print(
        f"at t={state['now']:.9g} / {state['end_time']:.9g} "
        f"[{state['mode']}] "
        f"{state['events_processed']} events processed, next {nxt_text}"
        + (" — run complete" if state["done"] else "")
    )


def _print_queues(session: ReplaySession, limit: int = 10) -> None:
    rows = session.queues(limit)
    if not rows:
        print("event queue: empty")
        return
    print(f"event queue (next {len(rows)}):")
    for when, priority, seq, label in rows:
        print(f"  t={when:.9f} prio={priority} seq={seq} {label}")


def _print_tail(session: ReplaySession, limit: int = 8) -> None:
    tail = session.tail()
    if not tail:
        print("event-log tail: empty")
        return
    print(f"event-log tail (last {min(limit, len(tail))} of {len(tail)}):")
    for entry in tail[-limit:]:
        print(f"  t={entry['time']:.9f} {entry['kind']} {entry['detail']}")


def _print_spans(session: ReplaySession, name: Optional[str] = None) -> None:
    spans = session.spans(name=name, window=0.0005, limit=10)
    if not spans:
        print("no recorded spans near this instant")
        return
    print(f"spans near t={session.now:.9g}:")
    for s in spans:
        end = s["end"] if s["end"] is not None else s["start"]
        print(
            f"  #{s['id']} {s['name']} [{s['start']:.9f}, {end:.9f}] "
            f"({(end - s['start']) * 1e6:.1f}us) pid={s['pid']} tid={s['tid']}"
        )


def _interact(session: ReplaySession) -> None:
    """The REPL-ish inspector loop (stdin commands, one per line)."""
    print(
        "commands: state | queues [n] | gmem RANK [OFF [N]] | spans [NAME] "
        "| tail | seek T | step [N] | continue-to T | finish | quit"
    )
    while True:
        try:
            line = input("(replay) ").strip()
        except EOFError:
            return
        if not line:
            continue
        cmd, *rest = line.split()
        try:
            if cmd in ("quit", "exit", "q"):
                return
            elif cmd == "state":
                _print_state(session)
            elif cmd == "queues":
                _print_queues(session, int(rest[0]) if rest else 10)
            elif cmd == "gmem":
                rank = int(rest[0]) if rest else 0
                offset = int(rest[1]) if len(rest) > 1 else 0
                nwords = int(rest[2]) if len(rest) > 2 else 8
                print(session.gmem(rank, offset, nwords))
            elif cmd == "spans":
                _print_spans(session, rest[0] if rest else None)
            elif cmd == "tail":
                _print_tail(session)
            elif cmd == "seek":
                session.seek(float(rest[0]))
                _print_state(session)
            elif cmd == "step":
                ran = session.step(int(rest[0]) if rest else 1)
                print(f"stepped {ran} event(s)")
                _print_state(session)
            elif cmd == "continue-to":
                session.continue_to(float(rest[0]))
                _print_state(session)
            elif cmd == "finish":
                result = session.finish()
                print(
                    f"finished: elapsed {result.elapsed:.6f}s simulated "
                    "(bit-identical to the recording)"
                )
            else:
                print(f"unknown command {cmd!r}")
        except (ReproError, ValueError, IndexError) as exc:
            print(f"error: {exc}")


def replay_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dse-experiments replay",
        description="Record a workload, then seek/inspect/resume any "
        "simulated instant of it (see docs/debugging.md).",
    )
    parser.add_argument(
        "--workload", choices=sorted(_REPLAY_WORKLOADS), default="gauss-seidel"
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", default="sunos")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument(
        "--ring", type=int, default=4, help="checkpoint ring size (default 4)"
    )
    parser.add_argument(
        "--interval", type=float, default=0.0,
        help="min simulated seconds between retained snapshots (default: all)",
    )
    parser.add_argument(
        "--charge-bps", type=float, default=0.0,
        help="model checkpoint I/O at this bandwidth (default: free)",
    )
    parser.add_argument(
        "--no-obs", action="store_true",
        help="skip span recording (disables --span/--worst anchors)",
    )
    parser.add_argument(
        "--record", metavar="PATH", default=None,
        help="save the recording manifest to PATH",
    )
    parser.add_argument(
        "--load", metavar="PATH", default=None,
        help="load a recording manifest instead of recording fresh",
    )
    parser.add_argument(
        "--at", type=float, default=None, help="seek to this simulated time"
    )
    parser.add_argument(
        "--span", type=int, default=None, help="seek to this span id's start"
    )
    parser.add_argument(
        "--worst", metavar="NAME", default=None,
        help="seek to the longest recorded span with this name (p999 jump)",
    )
    parser.add_argument(
        "--restore", action="store_true",
        help="jump via snapshot restore (solution-exact) instead of "
        "deterministic re-execution (timing-exact)",
    )
    parser.add_argument(
        "--step", type=int, default=0, help="then process N more events"
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue to completion and verify bit-identity",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-identity check on --resume",
    )
    parser.add_argument(
        "--interactive", action="store_true", help="drop into the inspector REPL"
    )
    args = parser.parse_args(argv)

    try:
        if args.load:
            recording = Recording.load(args.load)
            print(f"loaded {args.load}")
        else:
            spec = _REPLAY_WORKLOADS[args.workload]
            config = _build_config(args)
            recording = record(config, spec=spec)
        _print_recording(recording)
        if args.record:
            recording.save(args.record)
            print(f"wrote manifest to {args.record}")

        session = ReplaySession(recording)
        target: Optional[float] = args.at
        if args.worst is not None:
            worst = recording.worst_span(args.worst)
            end = worst["end"] if worst["end"] is not None else worst["start"]
            print(
                f"worst {args.worst!r}: span #{worst['id']} "
                f"[{worst['start']:.9f}, {end:.9f}] "
                f"({(end - worst['start']) * 1e6:.1f}us)"
            )
            anchor = session.seek_span(worst["id"])
            print(
                f"anchored at snapshot "
                f"{'s%d' % anchor.slot_seq if anchor.slot_seq is not None else '(none)'}"
                f" + {anchor.offset:.9f}s"
            )
            target = None
        elif args.span is not None:
            anchor = session.seek_span(args.span)
            print(
                f"span #{anchor.span_id} {anchor.name!r} starts at "
                f"t={anchor.time:.9f} (snapshot "
                f"{'s%d' % anchor.slot_seq if anchor.slot_seq is not None else '(none)'}"
                f" + {anchor.offset:.9f}s)"
            )
            target = None
        if target is not None:
            if args.restore:
                session.restore(at=target)
            else:
                session.seek(target)
        elif args.span is None and args.worst is None and (
            args.step or args.resume or args.interactive
        ):
            session.seek(0.0)

        if session._launched is not None:
            _print_state(session)
            _print_queues(session, 5)
            _print_tail(session, 5)
        if args.step:
            ran = session.step(args.step)
            print(f"stepped {ran} event(s)")
            _print_state(session)
        if args.interactive:
            _interact(session)
        if args.resume:
            result = session.finish(verify=not args.no_verify)
            suffix = (
                "" if args.no_verify or session.restored
                else " — bit-identical to the recording"
            )
            print(f"resumed to completion: elapsed {result.elapsed:.6f}s{suffix}")
    except ReplayError as exc:
        print(f"replay: {exc}")
        return 2
    return 0


def live_main(argv: List[str]) -> int:
    from .live import LiveSink, live_run

    parser = argparse.ArgumentParser(
        prog="dse-experiments live",
        description="Run a workload while streaming metrics/topology/span "
        "summaries as JSON lines (file and/or local TCP).",
    )
    parser.add_argument(
        "--workload", choices=sorted(_REPLAY_WORKLOADS), default="gauss-seidel"
    )
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--platform", default="sunos")
    parser.add_argument("--seed", type=int, default=1999)
    parser.add_argument(
        "--out", default=None, help="JSONL output path (tail -f friendly)"
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="also serve the stream to TCP clients on 127.0.0.1:PORT "
        "(0 picks a free port)",
    )
    parser.add_argument(
        "--every", type=float, default=0.001,
        help="sample period in simulated seconds (default 1 ms)",
    )
    parser.add_argument(
        "--no-obs", action="store_true", help="skip span recording"
    )
    args = parser.parse_args(argv)
    if not args.out and args.port is None:
        parser.error("nothing to stream to: pass --out PATH and/or --port N")

    from ..dse.config import ClusterConfig
    from ..hardware.platforms import get_platform

    spec = _REPLAY_WORKLOADS[args.workload]
    config = ClusterConfig(
        platform=get_platform(args.platform),
        n_processors=args.processors,
        seed=args.seed,
        obs_trace=not args.no_obs,
        replay=ReplayConfig(),
    )
    sink = LiveSink(path=args.out, port=args.port)
    if sink.port is not None:
        print(f"serving live stream on 127.0.0.1:{sink.port}")
    try:
        result = live_run(
            config, spec.make_entry(None), args=spec.args,
            sink=sink, every=args.every,
        )
    finally:
        sink.close()
    print(
        f"{args.workload} p={args.processors}: elapsed {result.elapsed:.6f}s "
        f"simulated, {sink.lines} stream lines"
        + (f" -> {args.out}" if args.out else "")
    )
    return 0
