"""Bounded checkpoint ring: the recorder's snapshot store.

Where :class:`repro.resilience.checkpoint.CheckpointStore` keeps exactly
the *latest* committed version (all a rollback ever needs), the replay
ring keeps the last ``ring_size`` committed snapshots so a debugger can
jump near any recent instant.  Slots are keyed by commit *sequence
number* — a monotonic ordinal that stays unique even when a resilience
rollback makes checkpoint version labels repeat.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["RingSlot", "CheckpointRing", "fingerprint_parts"]


def _canon_state(state: Any) -> bytes:
    """Canonical bytes for an application checkpoint state."""
    return json.dumps(state, sort_keys=True, default=repr).encode()


def fingerprint_parts(per_rank: "Dict[int, tuple]") -> str:
    """sha256 over every rank's (state, slice) pair, in rank order.

    This is the waypoint identity: two runs that produce the same
    fingerprint at the same simulated time passed through the same
    consistent cut bit-for-bit.
    """
    h = hashlib.sha256()
    for rank in sorted(per_rank):
        state, data = per_rank[rank]
        h.update(b"r%d:" % rank)
        h.update(_canon_state(state))
        h.update(b":")
        h.update(np.ascontiguousarray(data).tobytes())
    return h.hexdigest()


@dataclass
class RingSlot:
    """One committed, consistent snapshot of the whole cluster."""

    seq: int                      #: commit ordinal (0, 1, 2, ... over the run)
    version: int                  #: checkpoint version label the app saw
    time: float                   #: simulated time the commit completed
    states: Dict[int, Any]        #: rank -> application checkpoint state
    slices: Dict[int, np.ndarray]  #: rank -> home global-memory slice copy
    fingerprint: str = ""
    retained: bool = True         #: False for waypoint-only (interval-skipped)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.slices.values())


class CheckpointRing:
    """Pending-until-complete commit discipline over a bounded deque.

    Ranks contribute their pieces between two barriers; when every rank of
    a sequence has reported, the slot commits atomically.  Commit evicts
    the oldest retained slot beyond ``ring_size`` but its lightweight
    waypoint record (seq, time, fingerprint) survives in ``waypoints``.
    """

    def __init__(self, ring_size: int, world: int):
        self.ring_size = ring_size
        self.world = world
        self.slots: List[RingSlot] = []      # committed, oldest first
        self.waypoints: List[dict] = []      # every commit ever, oldest first
        self.evictions = 0
        self._pending: Dict[int, RingSlot] = {}  # seq -> slot being filled

    def put_rank(
        self,
        seq: int,
        version: int,
        rank: int,
        state: Any,
        data: np.ndarray,
        now: float,
        retained: bool = True,
    ) -> Optional[RingSlot]:
        """Record one rank's piece; returns the slot on commit, else None.

        ``retained`` must be consistent across the ranks of one sequence
        (the recorder memoises the decision at the first rank's arrival);
        it is read only when the slot is created.
        """
        slot = self._pending.get(seq)
        if slot is None:
            slot = self._pending[seq] = RingSlot(
                seq=seq, version=version, time=now, states={}, slices={},
                retained=retained,
            )
        slot.states[rank] = state
        slot.slices[rank] = data
        slot.time = now  # the cut completes when the last rank reports
        if len(slot.states) < self.world:
            return None
        del self._pending[seq]
        slot.fingerprint = fingerprint_parts(
            {r: (slot.states[r], slot.slices[r]) for r in slot.states}
        )
        self.waypoints.append(
            {
                "seq": slot.seq,
                "version": slot.version,
                "time": slot.time,
                "fingerprint": slot.fingerprint,
                "nbytes": slot.nbytes,
                "retained": slot.retained,
            }
        )
        if slot.retained:
            self.slots.append(slot)
            while len(self.slots) > self.ring_size:
                self.slots.pop(0)
                self.evictions += 1
        else:
            slot.states = {}
            slot.slices = {}
        return slot

    def nearest(self, time: float) -> Optional[RingSlot]:
        """Latest retained slot with ``slot.time <= time`` (None if too early)."""
        best = None
        for slot in self.slots:
            if slot.time <= time:
                best = slot
        return best

    def __len__(self) -> int:
        return len(self.slots)
