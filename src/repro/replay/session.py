"""Time-travel sessions: seek, step, and inspect a recorded run.

A :class:`ReplaySession` reconstructs any simulated instant of a
:class:`~repro.replay.recording.Recording`.  Two reconstruction paths,
matching the two guarantees the repo already makes:

**Deterministic re-execution** (:meth:`seek`) — the timing-exact path.
Runs are pure functions of their :class:`ClusterConfig`, so re-launching
the recorded workload under the *same* config and driving the event loop
to ``T`` reproduces the recorded instant bit-for-bit, simulated clock
included.  The live recorder carries the original recording as its
*reference*: every checkpoint the replay re-commits is fingerprint- and
time-compared against the recorded waypoint, so any divergence raises
:class:`~repro.errors.ReplayDivergence` at the cut where it happened
rather than as a silently different answer at the end.  Seeking backward
just relaunches — re-execution is cheap precisely because the simulator
is fast.

**Snapshot restore** (:meth:`restore`) — the solution-exact fast path.
Like the resilience rollback it reuses, it rebuilds a fresh cluster whose
clock starts at a retained ring snapshot's commit time, rewrites every
home global-memory slice from the snapshot, and re-invokes each rank with
its committed checkpoint state (the ``worker(api, ck, *args)`` shape of
:func:`repro.resilience.runner.run_resilient`).  It skips the prefix of
the run entirely, so it claims bit-identical *solutions* only — bootstrap
traffic and barrier stagger differ from the original timeline, exactly as
PR 4's rollback contract documents.

The inspector methods (:meth:`state`, :meth:`queues`, :meth:`gmem`,
:meth:`spans`, :meth:`tail`) read the reconstructed cluster without
scheduling any events, so inspection never perturbs the timeline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from ..dse.runtime import LaunchedRun, RunResult, launch_parallel
from ..errors import ReplayDivergence, ReplayError
from ..sim.core import Event
from .recording import Recording, ReplayAnchor, WorkloadSpec, fingerprint_returns
from .ring import RingSlot

__all__ = ["ReplaySession"]


def _restored_entry(api, worker, ck, args) -> Generator[Event, Any, Any]:
    """DSE-process wrapper giving workers the ``(api, ck, *args)`` shape."""
    value = yield from worker(api, ck, *args)
    return value


def _restore_master(spec: WorkloadSpec, slot: RingSlot) -> Callable:
    """Supervisor that re-invokes every rank from its checkpoint state."""
    worker = spec.resolve()
    args = spec.args

    def master(api) -> Generator[Event, Any, Dict[int, Any]]:
        cluster = api.kernel.cluster
        procman = api.kernel.procman
        handles = []
        for rank in range(api.size):
            handle = yield from procman.invoke(
                cluster.placement(rank), _restored_entry, rank,
                (worker, slot.states[rank], args),
            )
            handles.append(handle)
        results = yield from procman.wait_all(handles)
        return results

    master.__name__ = f"restore:{spec.label or spec.attr}"
    return master


class ReplaySession:
    """One debugger attached to one recording (see module docs)."""

    def __init__(
        self,
        recording: Recording,
        worker: Optional[Callable] = None,
        args: tuple = (),
    ):
        self.recording = recording
        #: in-memory workloads (no WorkloadSpec) supply the callable here
        self._worker = worker
        self._worker_args = args
        self._launched: Optional[LaunchedRun] = None
        #: True after :meth:`restore` — the timeline is then solution-exact
        #: only, and finish() must not compare against the recording
        self.restored = False

    # -- launching ------------------------------------------------------------
    def _entry(self):
        spec = self.recording.spec
        if spec is not None:
            return spec.make_entry(None), spec.args
        if self._worker is not None:
            return self._worker, self._worker_args
        raise ReplayError(
            "recording has no WorkloadSpec and no worker was supplied — "
            "pass worker= to ReplaySession for in-memory recordings"
        )

    def _launch(self) -> LaunchedRun:
        entry, args = self._entry()
        launched = launch_parallel(self.recording.config, entry, args=args)
        # Every checkpoint the replay commits is verified against the
        # recorded waypoints; a mismatch raises ReplayDivergence there.
        launched.cluster.replay.reference = self.recording
        return launched

    @property
    def cluster(self):
        if self._launched is None:
            raise ReplayError("no position yet — call seek()/restore() first")
        return self._launched.cluster

    @property
    def now(self) -> float:
        return self.cluster.sim.now

    @property
    def done(self) -> bool:
        return self._launched is not None and self._launched.done

    # -- movement -------------------------------------------------------------
    def seek(self, at: float) -> float:
        """Reconstruct the instant ``at`` (timing-exact); returns ``now``.

        Clamped to ``[0, recording end]``.  Seeking backward (or after a
        :meth:`restore`) relaunches the run from the start — deterministic
        re-execution is the mechanism, snapshots are the safety net."""
        at = min(max(at, 0.0), self.recording.end_time)
        if self._launched is None or self.restored or self._launched.now > at:
            self._launched = self._launch()
            self.restored = False
        self._launched.run_to(at)
        return self.now

    def seek_span(self, span_id: int) -> ReplayAnchor:
        """Jump to the start of a recorded span; returns its anchor."""
        anchor = self.recording.anchor(span_id)
        self.seek(anchor.time)
        return anchor

    def step(self, n: int = 1) -> int:
        """Advance by up to ``n`` events; returns how many ran."""
        if self._launched is None or self.restored:
            self.seek(0.0)
        return self._launched.step(n)

    def continue_to(self, at: float) -> float:
        """Resume execution to simulated time ``at`` (alias of seek)."""
        return self.seek(at)

    def finish(self, verify: bool = True) -> RunResult:
        """Run to completion; verify bit-identity against the recording.

        With ``verify`` (default, and meaningless after :meth:`restore`):
        the final return values' fingerprint, the elapsed simulated time,
        and the end-of-run clock must all equal the recording's, else
        :class:`ReplayDivergence`."""
        if self._launched is None:
            self.seek(0.0)
        result = self._launched.finish()
        if verify and not self.restored:
            final = self.recording.final
            fp = fingerprint_returns(result.returns)
            if fp != final["fingerprint"]:
                raise ReplayDivergence(
                    "replayed run finished with different return values "
                    f"(fingerprint {fp[:16]}… != recorded "
                    f"{final['fingerprint'][:16]}…)"
                )
            if result.elapsed != final["elapsed"]:
                raise ReplayDivergence(
                    f"replayed run took {result.elapsed!r} simulated seconds, "
                    f"recording took {final['elapsed']!r}"
                )
            end = result.cluster.sim.now
            if end != final["end_time"]:
                raise ReplayDivergence(
                    f"replayed run ended at t={end!r}, recording at "
                    f"t={final['end_time']!r}"
                )
        return result

    # -- snapshot restore (solution-exact fast path) ---------------------------
    def restore(
        self, seq: Optional[int] = None, at: Optional[float] = None
    ) -> float:
        """Jump into a retained ring snapshot without re-executing the prefix.

        ``seq`` picks a snapshot by sequence number; ``at`` picks the
        nearest retained snapshot at or before that time; neither picks the
        latest.  Requires a ck-style :class:`WorkloadSpec` (the workload
        must know how to resume from its checkpoint state).  Solution-exact
        only — see the module docs."""
        recording = self.recording
        spec = recording.spec
        if spec is None or not spec.ck_style:
            raise ReplayError(
                "restore() needs a ck-style workload (worker(api, ck, *args) "
                "that resumes from its checkpoint state); use seek() for "
                "timing-exact re-execution instead"
            )
        if not recording.slots:
            raise ReplayError(
                "recording retains no snapshots (did the workload call "
                "api.checkpoint()?)"
            )
        if seq is not None:
            matches = [s for s in recording.slots if s.seq == seq]
            if not matches:
                kept = [s.seq for s in recording.slots]
                raise ReplayError(
                    f"snapshot seq {seq} is not retained (ring kept {kept}; "
                    "older ones were evicted — raise ReplayConfig.ring_size)"
                )
            slot = matches[0]
        elif at is not None:
            slot = recording.nearest_slot(at)
            if slot is None:
                raise ReplayError(
                    f"no retained snapshot at or before t={at:.9g} "
                    f"(earliest is t={recording.slots[0].time:.9g}); "
                    "seek() can still reach it by re-execution"
                )
        else:
            slot = recording.slots[-1]
        launched = LaunchedRun(
            recording.config,
            _restore_master(spec, slot),
            start_time=slot.time,
            unwrap_spmd=True,
        )
        # Rewrite every home slice from the snapshot before anything runs —
        # the same restore the rollback RPC performs, minus the messages.
        for rank in sorted(slot.slices):
            kernel = launched.cluster.kernels[launched.cluster.placement(rank)]
            kernel.gmem.restore_slice(slot.slices[rank])
        rec = launched.cluster.replay
        if rec is not None:
            rec.note(
                "restore",
                {"seq": slot.seq, "time": slot.time, "nbytes": slot.nbytes},
            )
        self._launched = launched
        self.restored = True
        return self.now

    # -- inspection (no events scheduled; never perturbs the timeline) ---------
    def state(self) -> dict:
        """Position summary: clock, progress, mode, next event."""
        sim = self.cluster.sim
        return {
            "now": sim.now,
            "done": self.done,
            "mode": "restore" if self.restored else "replay",
            "events_processed": sim.events_processed,
            "events_cancelled": sim.events_cancelled,
            "next_event_time": sim.peek(),
            "end_time": self.recording.end_time,
        }

    def queues(self, limit: int = 10) -> list:
        """The next ``limit`` pending events in dispatch order."""
        return self.cluster.sim.queue_snapshot(limit)

    def gmem(self, rank: int, offset: int = 0, nwords: int = 8):
        """Copy of ``nwords`` words of rank's home slice, from ``offset``."""
        kernels = self.cluster.kernels
        if not (0 <= rank < len(kernels)):
            raise ReplayError(f"rank {rank} out of range 0..{len(kernels) - 1}")
        storage = kernels[self.cluster.placement(rank)].gmem.storage
        return storage[offset : offset + nwords].copy()

    def spans(
        self,
        name: Optional[str] = None,
        window: float = 0.0,
        limit: int = 20,
    ) -> List[dict]:
        """Recorded spans overlapping now ± ``window`` (newest first)."""
        t = self.now
        lo, hi = t - window, t + window
        out = []
        for s in self.recording.spans:
            if name is not None and s["name"] != name:
                continue
            end = s["end"] if s["end"] is not None else s["start"]
            if s["start"] <= hi and end >= lo:
                out.append(s)
        out.sort(key=lambda s: s["start"], reverse=True)
        return out[:limit]

    def tail(self) -> List[dict]:
        """The event-log tail at the current position."""
        if self._launched is not None:
            rec = self._launched.cluster.replay
            if rec is not None:
                return list(rec.tail)
        return list(self.recording.tail)
