"""Shared utilities: units, table rendering."""

from .units import (
    KB,
    KBPS,
    MB,
    MBPS,
    MS,
    US,
    bits,
    bytes_from_bits,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    transmission_time,
)
from .tables import Table, render_series, render_table

__all__ = [
    "KB",
    "KBPS",
    "MB",
    "MBPS",
    "MS",
    "US",
    "bits",
    "bytes_from_bits",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "transmission_time",
    "Table",
    "render_series",
    "render_table",
]
