"""Plain-text table and series rendering for experiment reports.

The benchmark harness prints the same rows/series the paper plots; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["render_table", "render_series", "Table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render one figure's data: x column plus one column per plotted line."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[Any] = [x]
        for name in series:
            vals = series[name]
            row.append(vals[i] if i < len(vals) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)


class Table:
    """Incrementally built table (convenience wrapper)."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.headers = list(headers)
        self.title = title
        self.rows: List[List[Any]] = []

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(row)}")
        self.rows.append(list(row))

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:
        return self.render()
