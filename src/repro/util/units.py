"""Unit helpers and constants.

All simulation time is in **seconds**, sizes in **bytes**, rates in
**bits per second** — these helpers keep call sites readable and prevent the
classic bits/bytes mix-up in the network models.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "US",
    "MS",
    "MBPS",
    "KBPS",
    "bits",
    "bytes_from_bits",
    "transmission_time",
    "fmt_time",
    "fmt_bytes",
    "fmt_rate",
]

KB = 1024
MB = 1024 * 1024

US = 1e-6  # one microsecond, in seconds
MS = 1e-3  # one millisecond, in seconds

KBPS = 1_000.0  # bits per second
MBPS = 1_000_000.0


def bits(nbytes: int) -> int:
    """Size in bits of ``nbytes`` bytes."""
    return int(nbytes) * 8


def bytes_from_bits(nbits: int) -> float:
    return nbits / 8.0


def transmission_time(nbytes: int, rate_bps: float) -> float:
    """Seconds to clock ``nbytes`` onto a link of ``rate_bps`` bits/second."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if nbytes < 0:
        raise ValueError(f"size must be non-negative, got {nbytes}")
    return bits(nbytes) / rate_bps


def fmt_time(seconds: float) -> str:
    """Human-readable duration (used in tables and reports)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.3f}s"
    return f"{seconds / 60.0:.2f}min"


def fmt_bytes(nbytes: float) -> str:
    if nbytes < KB:
        return f"{int(nbytes)}B"
    if nbytes < MB:
        return f"{nbytes / KB:.1f}KiB"
    return f"{nbytes / MB:.2f}MiB"


def fmt_rate(bps: float) -> str:
    if bps >= MBPS:
        return f"{bps / MBPS:.1f}Mbit/s"
    if bps >= KBPS:
        return f"{bps / KBPS:.1f}kbit/s"
    return f"{bps:.0f}bit/s"
