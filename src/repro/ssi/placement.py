"""Transparent process placement policies (SSI future-work extension).

The paper leaves load balancing to future work; this module supplies it:
a placement policy decides which kernel runs a newly invoked DSE process,
and the user never names a node.  Policies plug into
:meth:`repro.dse.cluster.Cluster.placement` via :func:`install_policy`.
"""

from __future__ import annotations

from typing import Callable, List

from ..dse.cluster import Cluster
from ..errors import SSIError

__all__ = [
    "identity_placement",
    "round_robin_machines",
    "least_loaded",
    "install_policy",
]

Policy = Callable[[int, Cluster], int]


def identity_placement(rank: int, cluster: Cluster) -> int:
    """Rank r runs on kernel r (the default SPMD layout)."""
    return rank


def round_robin_machines(rank: int, cluster: Cluster) -> int:
    """Spread processes across *machines* first, then across co-located
    kernels — avoids stacking work on doubled-up virtual-cluster nodes."""
    machines = cluster.config.machines_used
    machine = rank % machines
    kernels_there = cluster.config.kernels_on(machine)
    return kernels_there[(rank // machines) % len(kernels_there)]


def least_loaded(rank: int, cluster: Cluster) -> int:
    """Send the process to the kernel whose machine currently has the
    fewest live processes (ties break by kernel id)."""
    return min(
        (k.kernel_id for k in cluster.kernels),
        key=lambda kid: (
            len(cluster.kernel(kid).machine.live_processes),
            kid,
        ),
    )


def install_policy(cluster: Cluster, policy: Policy) -> None:
    """Replace the cluster's placement hook with ``policy`` (validated)."""

    def placement(rank: int) -> int:
        if not (0 <= rank < cluster.size):
            raise SSIError(f"rank {rank} out of range")
        kernel_id = policy(rank, cluster)
        if not (0 <= kernel_id < cluster.size):
            raise SSIError(
                f"placement policy returned invalid kernel {kernel_id} for rank {rank}"
            )
        return kernel_id

    cluster.placement = placement  # type: ignore[method-assign]
