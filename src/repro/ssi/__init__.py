"""Single-system-image services on top of the DSE runtime.

* :mod:`~repro.ssi.namespace` — one process space (global pids)
* :mod:`~repro.ssi.view` — cluster-as-one-machine management views
* :mod:`~repro.ssi.kvstore` — cluster-wide key-value service
* :mod:`~repro.ssi.fs` — single file-system namespace
* :mod:`~repro.ssi.placement` — transparent process placement policies
* :mod:`~repro.ssi.endpoints` — named-service endpoint registry
"""

from .endpoints import ServiceDirectory
from .fs import SSIFileSystem
from .kvstore import KVClient, KVService
from .namespace import GlobalNamespace, GlobalPid
from .placement import (
    identity_placement,
    install_policy,
    least_loaded,
    round_robin_machines,
)
from .remote_exec import MIGRATED_RANK_BASE, pick_least_loaded, remote_run
from .shell import ShellError, SSIShell
from .view import SSIView, node_info

__all__ = [
    "ServiceDirectory",
    "SSIFileSystem",
    "KVClient",
    "KVService",
    "GlobalNamespace",
    "GlobalPid",
    "identity_placement",
    "install_policy",
    "least_loaded",
    "round_robin_machines",
    "SSIView",
    "node_info",
    "MIGRATED_RANK_BASE",
    "pick_least_loaded",
    "remote_run",
    "ShellError",
    "SSIShell",
]
