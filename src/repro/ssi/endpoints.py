"""Service endpoints: the SSI-side registry of who serves what.

The single-system-image promise is that a *service* is addressed by
name, not by node: callers resolve ``"svc"`` and get the current set of
live endpoint ids, while nodes come and go underneath (elastic scale-up
/ scale-down, crashes, restarts).  :class:`ServiceDirectory` is that
registry — a deliberately small, deterministic, pure-python structure
shared by the traffic layer's :class:`~repro.traffic.service.VirtualCluster`
and anything else that wants a placement-aware view of a named service.

Every mutation is journalled with its simulated timestamp, so tests and
the observability layer can reconstruct the membership timeline of a
run exactly (the same idea as the kvstore's version history, at the
service-membership level).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError

__all__ = ["ServiceDirectory"]


class ServiceDirectory:
    """Name -> live endpoint ids, with a journalled membership history."""

    def __init__(self):
        self._services: Dict[str, List[int]] = {}
        #: journal of (time, service, endpoint, "up"/"down"), append-only
        self.journal: List[Tuple[float, str, int, str]] = []

    def register(self, service: str, endpoint: int, now: float = 0.0) -> None:
        """Add ``endpoint`` to ``service`` (idempotent)."""
        if not service:
            raise ConfigurationError("service name cannot be empty")
        members = self._services.setdefault(service, [])
        if endpoint in members:
            return
        members.append(endpoint)
        members.sort()
        self.journal.append((now, service, endpoint, "up"))

    def deregister(self, service: str, endpoint: int, now: float = 0.0) -> None:
        """Remove ``endpoint`` from ``service`` (idempotent)."""
        members = self._services.get(service)
        if members is None or endpoint not in members:
            return
        members.remove(endpoint)
        self.journal.append((now, service, endpoint, "down"))

    def resolve(self, service: str) -> List[int]:
        """The live endpoint ids for ``service``, ascending (a copy)."""
        return list(self._services.get(service, ()))

    def services(self) -> List[str]:
        """All known service names, sorted."""
        return sorted(self._services)

    def membership_at(self, service: str, t: float) -> List[int]:
        """Reconstruct the endpoint set of ``service`` as of time ``t``."""
        members: List[int] = []
        for when, name, endpoint, kind in self.journal:
            if when > t:
                break
            if name != service:
                continue
            if kind == "up":
                if endpoint not in members:
                    members.append(endpoint)
            else:
                if endpoint in members:
                    members.remove(endpoint)
        members.sort()
        return members
