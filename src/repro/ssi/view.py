"""Single-system-image management views: the cluster as one machine.

:class:`SSIView` renders the cluster the way SSI promises the user sees
it — ``ps``/``top``/``uname`` equivalents that span every node, plus an
in-simulation ``info`` RPC (``SSI_INFO_REQ``) any DSE process can use to
ask about any node without knowing where it runs.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..dse.api import ParallelAPI
from ..dse.cluster import Cluster
from ..dse.messages import DSEMessage, MsgType
from ..errors import SSIError
from ..sim.core import Event
from ..util.tables import Table
from .namespace import GlobalNamespace

__all__ = ["SSIView", "node_info"]


def node_info(api: ParallelAPI, kernel_id: int) -> Generator[Event, Any, Dict[str, Any]]:
    """In-simulation RPC: ask any node for its status (SSI_INFO)."""
    msg = DSEMessage(
        msg_type=MsgType.SSI_INFO_REQ,
        src_kernel=api.kernel.kernel_id,
        dst_kernel=kernel_id,
    )
    rsp = yield from api.kernel.exchange.request(msg)
    if rsp.status != "ok":
        raise SSIError(f"info request to kernel {kernel_id} failed: {rsp.status}")
    return rsp.data


class SSIView:
    """Management-plane view over a built cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.namespace = GlobalNamespace(cluster)

    def uname(self) -> str:
        """The single-machine identity the cluster presents."""
        platform = self.cluster.config.platform
        return (
            f"DSE-SSI cluster ({self.cluster.size} processors, "
            f"{self.cluster.config.machines_used} nodes) {platform.os_name}"
        )

    def ps(self) -> str:
        """Cluster-wide process listing (one process space)."""
        table = Table(["GPID", "NODE", "KERNEL", "NAME", "STATE"], title="cluster ps")
        for row in self.namespace.processes():
            table.add(
                row.gpid,
                row.hostname,
                f"k{row.kernel_id}",
                row.name,
                "R" if row.alive else "Z",
            )
        return table.render()

    def top(self) -> str:
        """Per-node load view (run-queue averages, process counts)."""
        table = Table(
            ["NODE", "KERNELS", "PROCS", "LOADAVG", "CPU%"], title="cluster top"
        )
        for machine in self.cluster.machines:
            kernels = [
                k.kernel_id for k in self.cluster.kernels if k.machine is machine
            ]
            table.add(
                machine.hostname,
                ",".join(f"k{k}" for k in kernels),
                len(machine.processes),
                round(machine.load_average(), 2),
                round(100 * machine.cpu.utilization(), 1),
            )
        return table.render()

    def netstat(self) -> str:
        """Fabric counters (frames, collisions) — the wire the SSI hides."""
        fabric = self.cluster.network.fabric
        table = Table(["COUNTER", "VALUE"], title="cluster netstat")
        for key in ("frames_sent", "frames_delivered", "collisions", "bytes_sent"):
            table.add(key, fabric.stats.counter(key).value)
        return table.render()
