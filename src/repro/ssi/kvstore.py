"""Cluster-wide key-value service (the substrate of the SSI namespace).

A :class:`KVService` installs message handlers on one kernel (the
*namespace server*, kernel 0 by convention); :class:`KVClient` gives any
DSE process put/get/delete/list operations against it.  Byte accounting
follows the stored values, so namespace traffic shows up on the wire like
everything else.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..dse.api import ParallelAPI
from ..dse.kernel import DSEKernel
from ..dse.messages import DSEMessage, MsgType
from ..errors import SSIError
from ..hardware.cpu import Work
from ..sim.core import Event

__all__ = ["KVService", "KVClient"]

_SERVICE_WORK = Work(iops=150)


class KVService:
    """Server side: a string-keyed object store on one kernel."""

    def __init__(self, kernel: DSEKernel):
        self.kernel = kernel
        self.data: Dict[str, Tuple[Any, int]] = {}  # key -> (value, nbytes)
        kernel.register_service(MsgType.KV_PUT_REQ, self._handle_put)
        kernel.register_service(MsgType.KV_GET_REQ, self._handle_get)
        kernel.register_service(MsgType.KV_DEL_REQ, self._handle_del)
        kernel.register_service(MsgType.KV_LIST_REQ, self._handle_list)

    def _handle_put(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        yield from self.kernel.unix_process.compute(_SERVICE_WORK)
        value, nbytes = msg.data
        self.data[msg.name] = (value, nbytes)
        return msg.make_response()

    def _handle_get(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        yield from self.kernel.unix_process.compute(_SERVICE_WORK)
        entry = self.data.get(msg.name)
        if entry is None:
            return msg.make_response(status="not-found")
        value, nbytes = entry
        return msg.make_response(data=value, extra_bytes=nbytes)

    def _handle_del(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        yield from self.kernel.unix_process.compute(_SERVICE_WORK)
        if msg.name not in self.data:
            return msg.make_response(status="not-found")
        del self.data[msg.name]
        return msg.make_response()

    def _handle_list(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        yield from self.kernel.unix_process.compute(_SERVICE_WORK)
        prefix = msg.name
        keys = sorted(k for k in self.data if k.startswith(prefix))
        return msg.make_response(data=keys, extra_bytes=sum(len(k) for k in keys))


class KVClient:
    """Client side: issue KV operations from any DSE process."""

    def __init__(self, api: ParallelAPI, server_kernel: int = 0):
        self.api = api
        self.server_kernel = server_kernel

    def _request(
        self, msg_type: MsgType, key: str, data: Any = None, extra_bytes: int = 0
    ) -> Generator[Event, Any, DSEMessage]:
        msg = DSEMessage(
            msg_type=msg_type,
            src_kernel=self.api.kernel.kernel_id,
            dst_kernel=self.server_kernel,
            name=key,
            data=data,
            extra_bytes=extra_bytes,
        )
        return (yield from self.api.kernel.exchange.request(msg))

    def put(self, key: str, value: Any, nbytes: int) -> Generator[Event, Any, None]:
        if not key:
            raise SSIError("empty key")
        rsp = yield from self._request(
            MsgType.KV_PUT_REQ, key, data=(value, nbytes), extra_bytes=nbytes
        )
        if rsp.status != "ok":
            raise SSIError(f"kv put {key!r} failed: {rsp.status}")

    def get(self, key: str, default: Any = None) -> Generator[Event, Any, Any]:
        rsp = yield from self._request(MsgType.KV_GET_REQ, key)
        if rsp.status == "not-found":
            return default
        if rsp.status != "ok":
            raise SSIError(f"kv get {key!r} failed: {rsp.status}")
        return rsp.data

    def delete(self, key: str) -> Generator[Event, Any, bool]:
        rsp = yield from self._request(MsgType.KV_DEL_REQ, key)
        if rsp.status == "not-found":
            return False
        if rsp.status != "ok":
            raise SSIError(f"kv delete {key!r} failed: {rsp.status}")
        return True

    def list(self, prefix: str = "") -> Generator[Event, Any, List[str]]:
        rsp = yield from self._request(MsgType.KV_LIST_REQ, prefix)
        if rsp.status != "ok":
            raise SSIError(f"kv list {prefix!r} failed: {rsp.status}")
        return rsp.data
