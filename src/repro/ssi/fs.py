"""Single file-system namespace.

GLUnix offered "the abstraction of a single, serverless file system"; the
DSE SSI layer provides the same *single namespace* property with a simpler
design: one namespace server (kernel 0) holding file contents behind the
KV service, so every node sees identical paths — the user cannot tell
which machine they are on.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..dse.api import ParallelAPI
from ..errors import SSIError
from ..sim.core import Event
from .kvstore import KVClient

__all__ = ["SSIFileSystem"]

_FILE_PREFIX = "fs:"


def _validate_path(path: str) -> str:
    if not path.startswith("/"):
        raise SSIError(f"path must be absolute, got {path!r}")
    if "//" in path or path != path.strip():
        raise SSIError(f"malformed path {path!r}")
    return path


class SSIFileSystem:
    """A cluster-wide file namespace for one DSE process."""

    def __init__(self, api: ParallelAPI, server_kernel: int = 0):
        self.api = api
        self.kv = KVClient(api, server_kernel)

    def write(self, path: str, content: str) -> Generator[Event, Any, None]:
        """Create/overwrite a file (visible to every node immediately)."""
        path = _validate_path(path)
        yield from self.kv.put(_FILE_PREFIX + path, content, nbytes=len(content))

    def read(self, path: str) -> Generator[Event, Any, str]:
        path = _validate_path(path)
        content = yield from self.kv.get(_FILE_PREFIX + path)
        if content is None:
            raise SSIError(f"no such file: {path}")
        return content

    def exists(self, path: str) -> Generator[Event, Any, bool]:
        path = _validate_path(path)
        content = yield from self.kv.get(_FILE_PREFIX + path)
        return content is not None

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        path = _validate_path(path)
        removed = yield from self.kv.delete(_FILE_PREFIX + path)
        if not removed:
            raise SSIError(f"no such file: {path}")

    def listdir(self, directory: str = "/") -> Generator[Event, Any, List[str]]:
        """Names directly under ``directory`` (collapsing subdirectories)."""
        directory = _validate_path(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        keys = yield from self.kv.list(_FILE_PREFIX + prefix)
        names = set()
        for key in keys:
            rest = key[len(_FILE_PREFIX + prefix):]
            names.add(rest.split("/", 1)[0] + ("/" if "/" in rest else ""))
        return sorted(names)

    def append(self, path: str, content: str) -> Generator[Event, Any, None]:
        path = _validate_path(path)
        existing = yield from self.kv.get(_FILE_PREFIX + path)
        combined = (existing or "") + content
        yield from self.kv.put(_FILE_PREFIX + path, combined, nbytes=len(combined))
