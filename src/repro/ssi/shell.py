"""`cluster(1)` — a management shell over the single-system image.

Parses the administration commands an operator of an SSI cluster expects
and answers them from the cluster-wide views, so scripts and tests can
drive the management plane textually::

    shell = SSIShell(cluster)
    print(shell.execute("ps"))
    print(shell.execute("pgrep dse-k3"))
    print(shell.execute("info 2"))

Commands are side-effect-free inspections; anything that needs messages
(file system, KV) lives in the in-simulation APIs instead.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List

from ..dse.cluster import Cluster
from ..errors import SSIError
from ..util.tables import Table
from .namespace import GlobalNamespace
from .view import SSIView

__all__ = ["SSIShell", "ShellError"]


class ShellError(SSIError):
    """Raised for unknown commands or bad arguments."""


class SSIShell:
    """Textual management interface over one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.view = SSIView(cluster)
        self.namespace = GlobalNamespace(cluster)
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self._help,
            "uname": self._uname,
            "ps": self._ps,
            "top": self._top,
            "netstat": self._netstat,
            "pgrep": self._pgrep,
            "stat": self._stat,
            "info": self._info,
            "kernels": self._kernels,
            "machines": self._machines,
        }

    # -- driver -----------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns its output (raises ShellError)."""
        parts = shlex.split(line)
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            raise ShellError(f"unknown command {command!r}; try 'help'")
        return handler(args)

    # -- commands ------------------------------------------------------------
    def _help(self, args: List[str]) -> str:
        return "commands: " + " ".join(sorted(self._commands))

    def _uname(self, args: List[str]) -> str:
        return self.view.uname()

    def _ps(self, args: List[str]) -> str:
        return self.view.ps()

    def _top(self, args: List[str]) -> str:
        return self.view.top()

    def _netstat(self, args: List[str]) -> str:
        return self.view.netstat()

    def _pgrep(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: pgrep <name>")
        row = self.namespace.find(args[0])
        if row is None:
            raise ShellError(f"no process named {args[0]!r}")
        return str(row.gpid)

    def _stat(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: stat <gpid>")
        try:
            gpid = int(args[0])
        except ValueError:
            raise ShellError(f"gpid must be an integer, got {args[0]!r}") from None
        proc = self.namespace.resolve(gpid)
        kernel_id, _local = self.namespace.split(gpid)
        return (
            f"gpid {gpid}: {proc.name} on {proc.machine.hostname} "
            f"(kernel k{kernel_id}, {'running' if not proc.exited else 'exited'}, "
            f"{proc.cpu_seconds:.4g}s cpu)"
        )

    def _info(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: info <kernel-id>")
        try:
            kernel = self.cluster.kernel(int(args[0]))
        except Exception:
            raise ShellError(f"no kernel {args[0]}") from None
        machine = kernel.machine
        return (
            f"kernel k{kernel.kernel_id} on {machine.hostname} "
            f"[{machine.platform.name}] "
            f"served={kernel.stats.counter('requests_served').value} "
            f"dse_processes={kernel.stats.counter('dse_processes').value}"
        )

    def _kernels(self, args: List[str]) -> str:
        table = Table(["KERNEL", "NODE", "PLATFORM", "SERVED"], title="kernels")
        for kernel in self.cluster.kernels:
            table.add(
                f"k{kernel.kernel_id}",
                kernel.machine.hostname,
                kernel.machine.platform.name,
                kernel.stats.counter("requests_served").value,
            )
        return table.render()

    def _machines(self, args: List[str]) -> str:
        table = Table(["NODE", "PLATFORM", "PROCS", "CPU%"], title="machines")
        for machine in self.cluster.machines:
            table.add(
                machine.hostname,
                machine.platform.name,
                len(machine.processes),
                round(100 * machine.cpu.utilization(), 1),
            )
        return table.render()
