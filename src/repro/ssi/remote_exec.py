"""Transparent remote execution (cooperative migration).

Real SSI systems of the era moved work between nodes via cooperative
checkpointing: a task packages its state, continues on another node, and
the result flows back — node choice is the system's business, not the
user's.  :func:`remote_run` provides exactly that on DSE: the caller names
a plain generator function and its (byte-accounted) state, the SSI layer
picks a node (least-loaded by default), the task runs there as a DSE
process, and the caller gets the return value.

The spawned task gets a fresh, private rank id, so it must not join the
SPMD ranks' collective operations (barriers over ``api.size``).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator, Optional

from ..dse.api import ParallelAPI
from ..errors import SSIError
from ..sim.core import Event

__all__ = ["remote_run", "pick_least_loaded", "MIGRATED_RANK_BASE"]

#: migrated/remote tasks get ranks far above any SPMD rank
MIGRATED_RANK_BASE = 1_000_000

_task_ids = count(1)


def pick_least_loaded(api: ParallelAPI, exclude_self: bool = False) -> int:
    """The kernel whose machine currently runs the fewest live processes."""
    cluster = api.kernel.cluster
    candidates = [
        k for k in cluster.kernels
        if not (exclude_self and k.kernel_id == api.kernel.kernel_id)
    ]
    if not candidates:
        raise SSIError("no candidate kernels for remote execution")
    return min(
        candidates,
        key=lambda k: (len(k.machine.live_processes), k.kernel_id),
    ).kernel_id


def remote_run(
    api: ParallelAPI,
    task: Callable[..., Generator],
    args: tuple = (),
    target: Optional[int] = None,
    exclude_self: bool = True,
) -> Generator[Event, Any, Any]:
    """Run ``task(api', *args)`` on another node; returns its return value.

    ``target`` picks the kernel explicitly; by default the least-loaded
    machine (excluding the caller's) is chosen — transparent placement.
    """
    if target is None:
        target = pick_least_loaded(api, exclude_self=exclude_self)
    if not (0 <= target < api.size):
        raise SSIError(f"remote-run target kernel {target} out of range")
    rank = MIGRATED_RANK_BASE + next(_task_ids)
    handle = yield from api.kernel.procman.invoke(target, task, rank, args)
    value = yield from api.kernel.procman.wait(handle)
    return value
