"""Global process namespace: cluster-wide process identifiers.

SSI promises one process space across the cluster: every UNIX process on
every machine gets a *global* pid, and management tools address processes
without knowing their node.  The namespace derives gpids deterministically
from (kernel id, local pid) so no coordination traffic is needed to assign
them — resolution is a table lookup on the management node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..dse.cluster import Cluster
from ..errors import SSIError
from ..osmodel.unixproc import UnixProcess

__all__ = ["GlobalPid", "GlobalNamespace"]

_GPID_STRIDE = 100_000


@dataclass(frozen=True)
class GlobalPid:
    """One row of the cluster-wide process table."""

    gpid: int
    kernel_id: int
    local_pid: int
    hostname: str
    name: str
    alive: bool


class GlobalNamespace:
    """The single process space over one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    @staticmethod
    def gpid_of(kernel_id: int, local_pid: int) -> int:
        if local_pid >= _GPID_STRIDE:
            raise SSIError(f"local pid {local_pid} exceeds namespace stride")
        return kernel_id * _GPID_STRIDE + local_pid

    @staticmethod
    def split(gpid: int) -> Tuple[int, int]:
        """(kernel id, local pid) of a global pid."""
        return divmod(gpid, _GPID_STRIDE)

    def processes(self) -> List[GlobalPid]:
        """The cluster-wide process table (every UNIX process, every node)."""
        rows: List[GlobalPid] = []
        for kernel in self.cluster.kernels:
            for pid, proc in sorted(kernel.machine.processes.items()):
                # A machine hosts several kernels in a virtual cluster; list
                # each process under the kernel whose UNIX process it is, and
                # under the lowest-id kernel of its machine otherwise.
                owner = self._owning_kernel(proc)
                if owner is not kernel:
                    continue
                rows.append(
                    GlobalPid(
                        gpid=self.gpid_of(kernel.kernel_id, pid),
                        kernel_id=kernel.kernel_id,
                        local_pid=pid,
                        hostname=kernel.machine.hostname,
                        name=proc.name,
                        alive=not proc.exited,
                    )
                )
        return rows

    def _owning_kernel(self, proc: UnixProcess):
        for kernel in self.cluster.kernels:
            if kernel.unix_process is proc:
                return kernel
        # Not a kernel process: attribute to the lowest-id kernel on the
        # machine (its spawner in this runtime).
        for kernel in self.cluster.kernels:
            if kernel.machine is proc.machine:
                return kernel
        raise SSIError(f"process {proc!r} belongs to no cluster machine")

    def resolve(self, gpid: int) -> UnixProcess:
        """Find the UNIX process behind a global pid, wherever it lives."""
        kernel_id, local_pid = self.split(gpid)
        if not (0 <= kernel_id < self.cluster.size):
            raise SSIError(f"gpid {gpid}: no kernel {kernel_id}")
        machine = self.cluster.kernel(kernel_id).machine
        try:
            return machine.process_by_pid(local_pid)
        except Exception:
            raise SSIError(f"gpid {gpid}: no process {local_pid} on {machine.hostname}") from None

    def find(self, name: str) -> Optional[GlobalPid]:
        """First process with the given name (cluster-wide pgrep)."""
        for row in self.processes():
            if row.name == name:
                return row
        return None
