"""The named scope registry behind ``dse-experiments check``.

A :class:`ScopeConfig` is one bounded scenario: which harness family
(transport or DSE), the protocol/scenario kind, and the nondeterminism
budgets.  Scopes are sized so exhaustive exploration finishes in
seconds -- the small-scope hypothesis: protocol bugs that exist at all
show up with 2-3 peers, a handful of messages, and one or two faults.

``mutant`` scopes reintroduce a historical bug (see
:mod:`repro.check.mutants`) and are *expected* to produce a violation;
the CLI inverts their verdict so CI can assert the checker still finds
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ScopeConfig:
    """One bounded, exhaustively explorable scenario."""

    name: str
    family: str  #: "transport" or "dse"
    kind: str  #: transport kind / DSE scenario name
    description: str = ""
    messages: int = 2
    window: int = 2
    loss_budget: int = 1
    dup_budget: int = 0
    tick_budget: int = 3
    max_steps: int = 40
    workers: int = 2
    rounds: int = 1
    mutant: Optional[str] = None  #: expected-violation scopes name their bug
    extra: Tuple[Tuple[str, object], ...] = field(default=())

    @property
    def expect_violation(self) -> bool:
        return self.mutant is not None


def make_harness(config: ScopeConfig):
    """Build a fresh harness for one path through ``config``'s scope."""
    if config.family == "transport":
        from .mutants import LostWakeupReliableService
        from .transport_harness import TransportHarness

        service_cls = None
        if config.mutant == "lost-wakeup":
            service_cls = LostWakeupReliableService
        elif config.mutant is not None:
            raise ValueError(f"unknown transport mutant {config.mutant!r}")
        return TransportHarness(
            config.kind,
            messages=config.messages,
            window=config.window,
            loss_budget=config.loss_budget,
            dup_budget=config.dup_budget,
            tick_budget=config.tick_budget,
            service_cls=service_cls,
        )
    if config.family == "dse":
        from .dse_harness import DSEHarness

        return DSEHarness(
            config.kind,
            workers=config.workers,
            rounds=config.rounds,
            mutant=config.mutant,
        )
    raise ValueError(f"unknown scope family {config.family!r}")


def _registry() -> Dict[str, ScopeConfig]:
    sw = ScopeConfig(
        name="sw",
        family="transport",
        kind="reliable",
        description="stop-and-wait, 2 pipelined sends, 1 loss + 1 dup",
        messages=2,
        loss_budget=1,
        dup_budget=1,
        tick_budget=2,
    )
    scopes = [
        sw,
        replace(
            sw,
            name="sw-lost-wakeup",
            mutant="lost-wakeup",
            description="PR 3's ack-before-check bug reintroduced "
            "(must wedge: sender confirmed, payload lost)",
        ),
        ScopeConfig(
            name="gbn",
            family="transport",
            kind="reliable-gbn",
            description="go-back-N, 2 messages in a 2-window, 1 loss + 1 dup",
            messages=2,
            window=2,
            loss_budget=1,
            dup_budget=1,
            tick_budget=2,
        ),
        ScopeConfig(
            name="sr",
            family="transport",
            kind="sr",
            description="selective repeat + SACK, 3 messages, 1 loss",
            messages=3,
            window=3,
            loss_budget=1,
            dup_budget=0,
            tick_budget=2,
            max_steps=60,
        ),
        ScopeConfig(
            name="dual",
            family="transport",
            kind="dual",
            description="dual-channel: 2 reliable + 1 raw message, 1 loss",
            messages=2,
            window=2,
            loss_budget=1,
            dup_budget=0,
            tick_budget=2,
        ),
        ScopeConfig(
            name="lock",
            family="dse",
            kind="lock",
            description="2 client kernels contend one lock around a remote "
            "read-modify-write, 2 rounds (mutual exclusion + final count)",
            workers=2,
            rounds=2,
            loss_budget=0,
            tick_budget=0,
            max_steps=60,
        ),
        ScopeConfig(
            name="barrier",
            family="dse",
            kind="barrier",
            description="3 client kernels x 2 barrier rounds (generation "
            "monotonicity, round spread <= 1)",
            workers=3,
            rounds=2,
            loss_budget=0,
            tick_budget=0,
            max_steps=60,
        ),
        ScopeConfig(
            name="coherence",
            family="dse",
            kind="coherence",
            description="3 client kernels write+read one cached block, "
            "2 rounds (single-writer, directory/cache agreement)",
            workers=3,
            rounds=2,
            loss_budget=0,
            tick_budget=0,
            max_steps=80,
        ),
        ScopeConfig(
            name="gather",
            family="dse",
            kind="gather",
            description="cross-homed writes + barrier + local reads "
            "(the Gauss-Seidel gather pattern, fixed form)",
            workers=2,
            rounds=1,
            loss_budget=0,
            tick_budget=0,
            max_steps=60,
        ),
        ScopeConfig(
            name="gather-race",
            family="dse",
            kind="gather",
            mutant="no-barrier",
            description="PR 3's gather race reintroduced: barrier removed, "
            "reads may see stale neighbour cells",
            workers=2,
            rounds=1,
            loss_budget=0,
            tick_budget=0,
            max_steps=60,
        ),
    ]
    return {scope.name: scope for scope in scopes}


#: every named scope, keyed by name
SCOPES: Dict[str, ScopeConfig] = _registry()

#: the bounded subset CI runs on every push (< ~2 min total)
SMOKE_SCOPES: Tuple[str, ...] = ("sw", "gbn", "sr", "coherence")

#: mutant scopes whose violation the CI run must reproduce
MUTANT_SCOPES: Tuple[str, ...] = ("sw-lost-wakeup", "gather-race")
