"""Model-checking harness for the transport services.

Wraps the *real* :mod:`repro.protocol` services -- stop-and-wait
(:class:`~repro.protocol.tcp.ReliableService`), go-back-N
(:class:`~repro.protocol.tcp.WindowedReliableService`), selective repeat
(:class:`~repro.protocol.sr.SelectiveRepeatService`) and the dual-channel
front (:class:`~repro.protocol.channels.DualChannelService`) -- around a
:class:`ModelNIC` that, instead of simulating a link, parks every
transmitted frame in a *choice pool*.  The scheduler then decides, frame
by frame, whether to deliver, drop, or duplicate it, and when to let the
next retransmit timer fire ("tick"), which makes every loss/reorder/
duplication schedule explicit and enumerable.

Frame identity is *content-based*: ``frame_id``/``packet_id`` counters
differ between the scheduler's stateless re-executions, so actions name
frames by (src, dst, port, kind, seq, payload) instead.  Identical
frames collapse to one pool entry with a multiplicity -- a symmetry
reduction that is sound because the receive path only reads frame
content (small payloads take the single-fragment fast path, bypassing
``packet_id``-keyed reassembly).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..protocol.channels import DualChannelService
from ..protocol.sr import SelectiveRepeatService, SRSegment, coalesce_ranges
from ..protocol.tcp import ReliableService, WindowedReliableService, _Seg
from ..protocol.udp import DatagramService
from ..sim.core import Simulator

#: user payloads are tiny strings; one ethernet fragment, always
_PAYLOAD_BYTES = 64
#: the single application port used by every transport scope
PORT = 7


class ModelNIC:
    """A NIC whose wire is the checker's choice pool.

    ``enqueue`` succeeds immediately (the sender's yield resumes in the
    same instant) and parks the frame with the harness; nothing moves
    until the scheduler picks a ``deliver`` action.
    """

    def __init__(self, harness: "TransportHarness", station_id: int):
        self.harness = harness
        self.station_id = station_id
        self._rx = None

    def on_receive(self, callback) -> None:
        self._rx = callback

    def enqueue(self, frame):
        self.harness._pool_add(frame)
        done = self.harness.sim.event(name="model-nic-tx")
        done.succeed()
        return done


def _frame_desc(frame) -> Tuple[str, int]:
    """Canonical (description, dst_station) for a pooled ethernet frame."""
    packet = frame.payload.packet
    payload = packet.payload
    if isinstance(payload, _Seg):
        body = f"{payload.kind} seq={payload.seq} u={payload.user_payload!r}"
    elif isinstance(payload, SRSegment):
        body = (
            f"sr-{payload.kind} seq={payload.seq} port={payload.port} "
            f"u={payload.user_payload!r} sack={payload.sack!r}"
        )
    else:
        body = f"raw u={payload!r}"
    desc = f"{packet.src}>{packet.dst}:{packet.dst_port} {body}"
    return desc, frame.dst


class TransportHarness:
    """One bounded transport scenario under checker control.

    ``kind`` selects the service stack (``reliable``, ``reliable-gbn``,
    ``sr``, ``dual``); ``service_cls`` swaps in a mutant class for the
    stop-and-wait stack (see :mod:`repro.check.mutants`).  Station 0
    sends ``messages`` payloads to station 1; stop-and-wait sends them
    from *concurrent* ``send`` processes (the DSE exchange pipelines
    requests the same way), windowed transports stream them through one
    process and ``flush``.
    """

    benign_exceptions = (ProtocolError,)

    def __init__(
        self,
        kind: str = "reliable",
        *,
        messages: int = 2,
        window: int = 2,
        loss_budget: int = 1,
        dup_budget: int = 0,
        tick_budget: int = 3,
        service_cls: Optional[type] = None,
    ):
        self.kind = kind
        self.sim = Simulator()
        self.loss_left = loss_budget
        self.dup_left = dup_budget
        self._dup_budget = dup_budget
        self.ticks_left = tick_budget
        #: pool entries [desc, dst_station, frame]; duplicates collapse
        self.pool: List[list] = []
        self.delivered: List[Any] = []
        self.dropped: List[str] = []
        self._new_acks: List[Any] = []
        self.expected = [f"m{i}" for i in range(messages)]
        self.raw_payload = "u0" if kind == "dual" else None

        self.nics = [ModelNIC(self, 0), ModelNIC(self, 1)]
        self.datagrams = [
            DatagramService(self.sim, nic) for nic in self.nics
        ]
        if kind == "reliable":
            cls = service_cls or ReliableService
            self.services = [cls(self.sim, dg) for dg in self.datagrams]
        elif kind == "reliable-gbn":
            self.services = [
                WindowedReliableService(self.sim, dg, window=window)
                for dg in self.datagrams
            ]
        elif kind == "sr":
            self.services = [
                SelectiveRepeatService(self.sim, dg, max_window=window)
                for dg in self.datagrams
            ]
        elif kind == "dual":
            self.services = [
                DualChannelService(self.sim, dg, max_window=window)
                for dg in self.datagrams
            ]
        else:
            raise ValueError(f"unknown transport harness kind {kind!r}")

        mailbox = self.services[1].bind(PORT)
        mailbox.on_arrival = lambda pkt: self.delivered.append(pkt.payload)

        sender = self.services[0]
        self.workers = []
        if kind == "reliable":
            for payload in self.expected:
                self.workers.append(
                    self.sim.process(
                        self._send_one(sender, payload), name=f"send:{payload}"
                    )
                )
        else:
            self.workers.append(
                self.sim.process(self._send_stream(sender), name="send-stream")
            )
        self._drain()
        self._new_acks.clear()

    # -- worker bodies --------------------------------------------------
    def _send_one(self, service, payload):
        yield from service.send(1, PORT, payload, _PAYLOAD_BYTES)

    def _send_stream(self, service):
        for payload in self.expected:
            yield from service.send(1, PORT, payload, _PAYLOAD_BYTES)
        if self.raw_payload is not None:
            yield from service.send(
                1, PORT, self.raw_payload, _PAYLOAD_BYTES, channel="unreliable"
            )
        yield from service.flush(1, PORT)

    # -- pool plumbing ---------------------------------------------------
    def _pool_add(self, frame) -> None:
        desc, dst = _frame_desc(frame)
        self.pool.append([desc, dst, frame])
        payload = frame.payload.packet.payload
        if isinstance(payload, SRSegment) and payload.kind == "ack":
            self._new_acks.append(frame.payload.packet)

    def _pool_take(self, desc: str) -> list:
        for i, entry in enumerate(self.pool):
            if entry[0] == desc:
                return self.pool.pop(i)
        raise KeyError(f"no pooled frame {desc!r}")

    def _drain(self) -> None:
        sim = self.sim
        while sim.peek() <= sim.now:
            sim.step()

    def _live_timers(self) -> List[tuple]:
        return sorted(
            (entry[0] - self.sim.now, entry[1], type(entry[3]).__name__)
            for entry in self.sim._queue
            if entry[3] is not None
        )

    def _observable(self) -> tuple:
        """Protocol-visible state, used to skip no-op stale timers."""
        return (
            tuple(sorted(entry[0] for entry in self.pool)),
            tuple(self.delivered),
            tuple(worker.triggered for worker in self.workers),
            tuple(_service_state(self.kind, s) for s in self.services),
        )

    # -- scheduler interface ---------------------------------------------
    def enabled(self) -> List[Tuple[str, ...]]:
        if not self.pool and not self.goal_errors():
            # Goal reached with nothing in flight: any remaining timers are
            # stale no-ops, so the path is complete.
            return []
        actions: List[Tuple[str, ...]] = []
        for desc in sorted({entry[0] for entry in self.pool}):
            actions.append(("deliver", desc))
            if self.loss_left > 0:
                actions.append(("drop", desc))
            if self.dup_left > 0:
                actions.append(("dup", desc))
        if self.ticks_left > 0 and self._live_timers():
            actions.append(("tick",))
        return actions

    def apply(self, action: Tuple[str, ...]) -> None:
        self._new_acks.clear()
        op = action[0]
        if op == "deliver":
            desc, dst, frame = self._pool_take(action[1])
            self.nics[dst]._rx(frame)
        elif op == "drop":
            desc, _dst, _frame = self._pool_take(action[1])
            self.loss_left -= 1
            self.dropped.append(desc)
        elif op == "dup":
            entry = next(e for e in self.pool if e[0] == action[1])
            self.dup_left -= 1
            self.pool.append(list(entry))
        elif op == "tick":
            self.ticks_left -= 1
            # Advance time until a timer does something protocol-visible.
            # Stale timers (epoch-bumped, already-acked) fire as no-ops and
            # would otherwise burn the tick budget one pop at a time.
            before = self._observable()
            while self._live_timers():
                self.sim.step()
                self._drain()
                if self._observable() != before:
                    break
            return
        else:
            raise ValueError(f"unknown action {action!r}")
        self._drain()

    def is_truncated(self) -> bool:
        return bool(
            not self.pool
            and self.ticks_left <= 0
            and self._live_timers()
            and self.goal_errors()
        )

    def independent(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
        if a[0] == "tick" or b[0] == "tick":
            return False  # timers race with everything
        if a[1] == b[1]:
            return False  # same frame content
        if a[0] == "deliver" and b[0] == "deliver":
            # Deliveries to different stations touch disjoint state.
            da = self._desc_dst(a[1])
            db = self._desc_dst(b[1])
            return da is not None and db is not None and da != db
        if a[0] == "deliver" or b[0] == "deliver":
            return True  # a delivery vs. a drop/dup of a different frame
        # Two drops (or two dups) share a budget, so one can disable the
        # other; a drop and a dup of different frames commute freely.
        return a[0] != b[0]

    def _desc_dst(self, desc: str) -> Optional[int]:
        for entry in self.pool:
            if entry[0] == desc:
                return entry[1]
        return None

    # -- verdicts ---------------------------------------------------------
    def _delivered_reliable(self) -> List[Any]:
        if self.raw_payload is None:
            return self.delivered
        return [p for p in self.delivered if p != self.raw_payload]

    def invariant_errors(self) -> List[str]:
        errors: List[str] = []
        reliable = self._delivered_reliable()
        if reliable != self.expected[: len(reliable)]:
            errors.append(
                f"delivered {reliable!r} is not a prefix of {self.expected!r} "
                "(duplicate or reordered delivery)"
            )
        if self.raw_payload is not None:
            raws = len(self.delivered) - len(reliable)
            if raws > 1 + self._dup_budget:
                errors.append(f"raw payload delivered {raws} times")
        for station, service in enumerate(self.services):
            errors.extend(
                f"station {station}: {msg}"
                for msg in _service_invariants(self.kind, service)
            )
        errors.extend(self._sack_invariants())
        return errors

    def _sack_invariants(self) -> List[str]:
        """Freshly generated SR acks must mirror the receiver's buffer."""
        errors = []
        for packet in self._new_acks:
            seg: SRSegment = packet.payload
            service = _sr_core(self.services[packet.src])
            if service is None:
                continue
            rx = service._rx.get((packet.dst, seg.port))
            if rx is None:
                errors.append(f"ack for unknown rx flow {seg.port}")
                continue
            if seg.seq != rx.rcv_next:
                errors.append(
                    f"ack cumulative seq {seg.seq} != rcv_next {rx.rcv_next}"
                )
            want = tuple(
                coalesce_ranges(sorted(rx.buffer))[: service.max_sack_ranges]
            )
            if tuple(seg.sack or ()) != want:
                errors.append(
                    f"sack {seg.sack!r} inconsistent with rx buffer ({want!r})"
                )
        return errors

    def goal_errors(self) -> List[str]:
        errors = []
        for worker in self.workers:
            if not worker.triggered:
                errors.append(f"worker {worker.name!r} never completed")
        reliable = self._delivered_reliable()
        if reliable != self.expected:
            errors.append(
                f"terminal delivery {reliable!r} != goal {self.expected!r} "
                "(lost wakeup: sender confirmed, receiver never got it)"
            )
        if self.raw_payload is not None:
            raw_dropped = any("raw" in d for d in self.dropped)
            raws = len(self.delivered) - len(reliable)
            if not raw_dropped and raws == 0:
                errors.append("raw payload neither dropped nor delivered")
        return errors

    def fingerprint(self) -> tuple:
        pool = tuple(sorted(entry[0] for entry in self.pool))
        services = tuple(
            _service_state(self.kind, service) for service in self.services
        )
        return (
            pool,
            self.loss_left,
            self.dup_left,
            self.ticks_left,
            tuple(self.delivered),
            tuple(self.dropped),
            services,
            tuple(self._live_timers()),
            tuple(worker.triggered for worker in self.workers),
        )


def _sr_core(service) -> Optional[SelectiveRepeatService]:
    if isinstance(service, SelectiveRepeatService):
        return service
    if isinstance(service, DualChannelService):
        return service.reliable
    return None


def _stats_state(service) -> tuple:
    return tuple(sorted(service.stats.snapshot().items()))


def _service_state(kind: str, service) -> tuple:
    """Exact canonical state of one service endpoint."""
    if kind == "reliable":
        return (
            tuple(sorted(service._send_seq.items())),
            tuple(sorted(service._recv_seq.items())),
            tuple(sorted(service._ack_events)),
            _stats_state(service),
        )
    if kind == "reliable-gbn":
        streams = tuple(
            (key, s.base, s.next_seq, tuple(sorted(s.buffer)), s.timer_epoch,
             s.window_event is not None)
            for key, s in sorted(service._streams.items())
        )
        return (
            streams,
            tuple(sorted(service._recv_expected.items())),
            tuple(sorted(service._retries.items())),
            _stats_state(service),
        )
    sr = _sr_core(service)
    flows = tuple(
        (
            key,
            f.base,
            f.next_seq,
            tuple(
                (seq, t.sacked, t.sacked_past, t.retransmitted)
                for seq, t in sorted(f.buffer.items())
            ),
            f.timer_epoch,
            f.window_event is not None,
            f.cwnd,
            f.ssthresh,
            f.srtt,
            f.rttvar,
            f.rto,
            f.backoff,
            f.recover,
            f.stall_rounds,
            f.high_sack,
            f.n_sacked,
        )
        for key, f in sorted(sr._flows.items())
    )
    rx = tuple(
        (key, r.rcv_next, tuple(sorted(r.buffer)))
        for key, r in sorted(sr._rx.items())
    )
    return (flows, rx, _stats_state(sr), _stats_state(service))


def _service_invariants(kind: str, service) -> List[str]:
    """Structural safety invariants over one service endpoint."""
    errors: List[str] = []
    if kind == "reliable":
        for (dst, port, seq) in service._ack_events:
            sent = service._send_seq.get((dst, port), 0)
            if not 0 <= seq < sent:
                errors.append(f"ack wait for unallocated seq {seq} (sent {sent})")
        return errors
    if kind == "reliable-gbn":
        for key, stream in service._streams.items():
            if stream.base > stream.next_seq:
                errors.append(f"gbn {key}: base {stream.base} > next {stream.next_seq}")
            bad = [s for s in stream.buffer if not stream.base <= s < stream.next_seq]
            if bad:
                errors.append(f"gbn {key}: buffered seqs {bad} outside window")
        return errors
    sr = _sr_core(service)
    if sr is None:
        return errors
    for key, flow in sr._flows.items():
        if flow.base > flow.next_seq:
            errors.append(f"sr {key}: base {flow.base} > next {flow.next_seq}")
        bad = [s for s in flow.buffer if not flow.base <= s < flow.next_seq]
        if bad:
            errors.append(f"sr {key}: buffered seqs {bad} outside window")
        n_sacked = sum(1 for t in flow.buffer.values() if t.sacked)
        if flow.n_sacked != n_sacked:
            errors.append(
                f"sr {key}: n_sacked {flow.n_sacked} != actual {n_sacked}"
            )
        if flow.cwnd < sr.cwnd_floor - 1e-9:
            errors.append(f"sr {key}: cwnd {flow.cwnd} below floor {sr.cwnd_floor}")
        if flow.cwnd > sr.max_window + 1e-9:
            errors.append(f"sr {key}: cwnd {flow.cwnd} above max {sr.max_window}")
    for key, rx in sr._rx.items():
        bad = [s for s in rx.buffer if s <= rx.rcv_next]
        if bad:
            errors.append(
                f"sr rx {key}: buffered seqs {bad} not beyond rcv_next {rx.rcv_next}"
            )
    return errors
