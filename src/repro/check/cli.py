"""``dse-experiments check``: run named model-checking scopes.

Examples::

    dse-experiments check --list
    dse-experiments check                  # every clean scope
    dse-experiments check --smoke          # CI subset (sw/gbn/sr/coherence)
    dse-experiments check --mutants        # must rediscover the known bugs
    dse-experiments check sw sr --no-por   # cross-check without reduction
    dse-experiments check sw-lost-wakeup --save-trace traces/
    dse-experiments check --replay traces/sw-lost-wakeup.json

Clean scopes must explore to exhaustion with zero violations; ``mutant``
scopes carry a reintroduced historical bug and *must* produce one, whose
counterexample is then replayed twice to confirm the trace is a complete,
deterministic schedule.  The exit status reflects both directions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from .scheduler import Counterexample, explore, replay_counterexample
from .scopes import MUTANT_SCOPES, SCOPES, SMOKE_SCOPES, ScopeConfig, make_harness


def _print_trace(counterexample: Counterexample) -> None:
    print(f"  counterexample ({len(counterexample.trace)} steps):")
    for step, action in enumerate(counterexample.trace):
        print(f"    {step:3d}. {' '.join(str(part) for part in action)}")


def _replay_twice(config: ScopeConfig, ce: Counterexample) -> bool:
    """True when two standalone replays observe identical outcomes."""
    runs = []
    for _ in range(2):
        runs.append(
            [
                (step, action, tuple(errors))
                for step, action, errors in replay_counterexample(
                    lambda: make_harness(config), ce
                )
            ]
        )
    return runs[0] == runs[1] and bool(runs[0])


def _run_scope(config: ScopeConfig, args) -> bool:
    """Explore one scope; prints the verdict, returns pass/fail."""
    result = explore(
        lambda: make_harness(config),
        scope=config.name,
        max_steps=args.max_steps or config.max_steps,
        max_violations=args.max_violations,
        por=not args.no_por,
    )
    stats = result.stats
    coverage = "exhaustive" if result.complete else "CAPPED"
    print(f"{config.name}: {config.description}")
    print(f"  explored {coverage}: {stats.summary()}")

    if config.expect_violation:
        if not result.violations:
            print("  FAIL: mutant scope produced no violation "
                  "(the checker lost a known-real bug)")
            return False
        ce = result.counterexamples()[0]
        deterministic = _replay_twice(config, ce)
        print(
            f"  rediscovered {config.mutant!r}: [{ce.kind}] {ce.detail}"
        )
        _print_trace(ce)
        print(
            "  replayed twice standalone: "
            + ("identical (deterministic)" if deterministic else "MISMATCH")
        )
        if args.save_trace:
            out = Path(args.save_trace) / f"{config.name}.json"
            out.parent.mkdir(parents=True, exist_ok=True)
            ce.save(out)
            print(f"  saved counterexample to {out}")
        return deterministic

    if result.violations:
        for violation in result.violations:
            print(f"  FAIL {violation}")
        for ce in result.counterexamples():
            _print_trace(ce)
            if args.save_trace:
                out = Path(args.save_trace) / f"{config.name}.json"
                out.parent.mkdir(parents=True, exist_ok=True)
                ce.save(out)
                print(f"  saved counterexample to {out}")
        return False
    print("  ok: no violations")
    return True


def _replay_file(path: str) -> int:
    ce = Counterexample.load(path)
    config = SCOPES.get(ce.scope)
    if config is None:
        print(f"counterexample names unknown scope {ce.scope!r}", file=sys.stderr)
        return 2
    print(f"replaying {path}: scope {ce.scope!r}, [{ce.kind}] {ce.detail}")
    found = False
    for step, action, errors in replay_counterexample(
        lambda: make_harness(config), ce
    ):
        line = " ".join(str(part) for part in action)
        print(f"  {step:3d}. {line}")
        for error in errors:
            print(f"       !! {error}")
            found = True
    print("violation reproduced" if found else "violation did NOT reproduce")
    return 0 if found else 1


def check_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dse-experiments check",
        description="Exhaustive small-scope model checking of the "
        "transport and DSE protocol state machines.",
    )
    parser.add_argument("scopes", nargs="*",
                        help="scope names (default: every clean scope)")
    parser.add_argument("--list", action="store_true",
                        help="list the named scopes and exit")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run the CI subset: {', '.join(SMOKE_SCOPES)}")
    parser.add_argument("--mutants", action="store_true",
                        help="also run the reintroduced-bug scopes "
                        "(checker must find their violation)")
    parser.add_argument("--no-por", action="store_true",
                        help="disable sleep-set partial-order reduction "
                        "(cross-check: the verdict must not change)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="override the per-scope path-depth bound")
    parser.add_argument("--max-violations", type=int, default=1,
                        help="stop a scope after this many findings (default 1)")
    parser.add_argument("--save-trace", metavar="DIR", default=None,
                        help="write counterexample traces as JSON under DIR")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-execute a saved counterexample and exit")
    args = parser.parse_args(argv)

    if args.replay:
        return _replay_file(args.replay)
    if args.list:
        for name, config in SCOPES.items():
            marker = " [mutant]" if config.expect_violation else ""
            print(f"{name:>16}{marker}: {config.description}")
        return 0

    if args.scopes:
        unknown = [s for s in args.scopes if s not in SCOPES]
        if unknown:
            print(
                f"unknown scope(s) {unknown}; known: {', '.join(SCOPES)}",
                file=sys.stderr,
            )
            return 2
        names = list(args.scopes)
    elif args.smoke:
        names = list(SMOKE_SCOPES)
    else:
        names = [n for n, c in SCOPES.items() if not c.expect_violation]
    if args.mutants:
        names.extend(n for n in MUTANT_SCOPES if n not in names)

    failures = 0
    for name in names:
        if not _run_scope(SCOPES[name], args):
            failures += 1
        print()
    print(
        f"model check: {len(names)} scope(s), "
        f"{len(names) - failures} passed, {failures} failed"
    )
    return 1 if failures else 0
