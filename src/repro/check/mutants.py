"""Reintroduced historical bugs, for the checker's regression corpus.

These classes exist so the model checker can prove it finds *known-real*
defects -- the two bugs PR 3's dynamic sanitizers caught are brought back
here, behind test-only subclasses that production code never imports:

* :class:`LostWakeupReliableService` restores the stop-and-wait ack bug
  fixed in ``db3c692``: the receiver acknowledged *every* segment before
  checking its sequence number, so an out-of-order segment was confirmed
  to the sender and then discarded.  The sender stopped retransmitting
  and the payload was gone -- a lost wakeup whenever the payload was a
  lock grant or barrier release.
* The Gauss-Seidel gather race (worker reads neighbour slices before the
  writers' remote writes have landed) is reproduced structurally by the
  ``gather-race`` DSE scope, which runs the same write/read pattern with
  its synchronizing barrier removed (see
  :meth:`repro.check.dse_harness.DSEHarness` and
  :data:`repro.check.scopes.SCOPES`).
"""

from __future__ import annotations

from ..protocol.packet import Packet
from ..protocol.tcp import ReliableService


class LostWakeupReliableService(ReliableService):
    """Stop-and-wait with the pre-``db3c692`` receive path.

    Identical to :class:`~repro.protocol.tcp.ReliableService` except that
    ``_on_data`` re-acks *before* the in-order check -- the "always
    (re-)ack what we have seen so a lost ack is repaired" rationale that
    looked plausible and confirmed discarded data.  The checker must
    rediscover the consequence: drop the first of two pipelined segments
    and deliver the second, and the sender of the second completes while
    its payload is silently lost.
    """

    def _on_data(self, packet: Packet, outer) -> None:
        seg = packet.payload
        key = (packet.src, packet.dst_port)
        expected = self._recv_seq.get(key, 0)
        # BUG (reintroduced): acks everything seen, including segments we
        # are about to discard as out-of-order.
        self._send_ack(packet.src, packet.dst_port, seg.seq)
        if seg.seq != expected:
            self.stats.counter("duplicates_dropped").increment()
            return
        self._recv_seq[key] = expected + 1
        user_packet = Packet(
            src=packet.src,
            dst=packet.dst,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=seg.user_payload,
            payload_bytes=packet.payload_bytes,
            trace=packet.trace,
        )
        self.stats.counter("delivered").increment()
        if outer.on_arrival is not None:
            outer.on_arrival(user_packet)
        outer.queue.put(user_packet)
