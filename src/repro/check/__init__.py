"""Explicit-state model checking for the protocol and DSE state machines.

``repro.check`` drives the *existing* transport services
(:mod:`repro.protocol`) and DSE message handlers (:mod:`repro.dse`)
through a nondeterminism-controlled mini-harness: every frame delivery,
loss, duplication, and timer firing becomes an explicit *choice*, and an
iterative depth-first scheduler enumerates every choice sequence within
a bounded scope (2-3 peers, a handful of messages, a small loss/dup/tick
budget).  Canonical state fingerprints prune revisited states, sleep-set
partial-order reduction commutes independent deliveries, and safety
invariants are checked at every quiescent instant.  Violations come out
as deterministic counterexample traces -- the exact choice sequence --
that re-execute standalone (see :mod:`repro.check.scheduler`).

Entry points:

* :func:`repro.check.scheduler.explore` -- the checker core.
* :mod:`repro.check.scopes` -- the named scope registry used by
  ``dse-experiments check``.
* :mod:`repro.check.mutants` -- reintroduced historical bugs for the
  regression corpus (the checker must rediscover them).
"""

from .scheduler import (  # noqa: F401
    Counterexample,
    CheckResult,
    ExplorationStats,
    Violation,
    explore,
    replay_counterexample,
)
from .scopes import SCOPES, SMOKE_SCOPES, ScopeConfig, make_harness  # noqa: F401
