"""Model-checking harness for the DSE kernel protocols.

Runs the *real* handler code -- :class:`~repro.dse.sync.SyncManager`,
:class:`~repro.dse.gmem.GlobalMemoryManager` and the directory-based
:class:`~repro.dse.coherence.CachingGlobalMemory` -- on top of a
:class:`ModelKernel`/:class:`ModelExchange` pair that replaces the
machine/transport stack with the checker's choice pool: every inter-
kernel :class:`~repro.dse.messages.DSEMessage` parks in the pool until
the scheduler delivers it, while local dispatch and compute stay inline
(compute is free in the model -- only *message order* is explored).

Because ``DSEMessage.seq`` comes from a module-level counter, raw
sequence numbers differ between the scheduler's stateless re-executions.
The harness therefore assigns dense *alias* numbers in deterministic
program order and uses them in action descriptions and fingerprints;
states that are isomorphic up to sequence renaming behave identically,
so the renaming is sound for visited-set pruning.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..dse.coherence import EXCLUSIVE, CachingGlobalMemory
from ..dse.gmem import GlobalMemoryManager
from ..dse.messages import DSEMessage, MsgType
from ..dse.sync import SyncManager
from ..sim.core import Simulator


class _NoCostProcess:
    """Stands in for ``kernel.unix_process``: compute costs nothing here."""

    def compute(self, work):
        return
        yield  # pragma: no cover - generator parity


class ModelExchange:
    """The :class:`~repro.dse.exchange.MessageExchange` surface, pooled.

    Local traffic dispatches inline (as the real exchange does); remote
    messages go to the harness pool and the requester suspends on a
    waiter event keyed by ``(kernel, seq)`` until the scheduler delivers
    the response.
    """

    def __init__(self, harness: "DSEHarness", kernel: "ModelKernel"):
        self.harness = harness
        self.kernel = kernel
        self.sim = kernel.sim

    def request(self, msg: DSEMessage):
        if msg.dst_kernel == self.kernel.kernel_id:
            response = yield from self.kernel.dispatch(msg)
            if response is None:  # deferred reply (lock queue, barrier)
                response = yield from self._await(msg.seq)
            return response
        waiter = self.harness._register_waiter(self.kernel.kernel_id, msg.seq)
        self.harness._pool_add(msg)
        response = yield waiter
        return response

    def _await(self, seq: int):
        waiter = self.harness._register_waiter(self.kernel.kernel_id, seq)
        response = yield waiter
        return response

    def reply(self, response: DSEMessage):
        if response.dst_kernel == self.kernel.kernel_id:
            self.harness._resolve_waiter(self.kernel.kernel_id, response)
        else:
            self.harness._pool_add(response)
        return
        yield  # pragma: no cover - generator parity

    def notify(self, msg: DSEMessage):
        if msg.dst_kernel == self.kernel.kernel_id:
            yield from self.kernel.dispatch(msg)
            return
        self.harness._pool_add(msg)


class ModelKernel:
    """Just enough of :class:`~repro.dse.kernel.DSEKernel` for the handlers.

    ``cluster`` is an empty namespace -- the sanitizer/resilience/config
    lookups in the real modules all go through ``getattr`` defaults, so
    they resolve to "disabled" here.  ``dispatch`` mirrors the real
    kernel's routing for the message types these scopes exercise.
    """

    def __init__(self, harness: "DSEHarness", kernel_id: int, cluster_size: int):
        self.sim = harness.sim
        self.kernel_id = kernel_id
        self.cluster_size = cluster_size
        self.cluster = SimpleNamespace()
        self.unix_process = _NoCostProcess()
        self.exchange = ModelExchange(harness, self)
        self.sync = SyncManager(self)
        self.gmem: Optional[GlobalMemoryManager] = None

    def dispatch(self, msg: DSEMessage):
        t = msg.msg_type
        if t is MsgType.GM_READ_REQ:
            return (yield from self.gmem.handle_read(msg))
        if t is MsgType.GM_WRITE_REQ:
            return (yield from self.gmem.handle_write(msg))
        if t in (
            MsgType.GM_FETCH_REQ,
            MsgType.GM_OWN_REQ,
            MsgType.GM_INV_REQ,
            MsgType.GM_WB_REQ,
        ):
            return (yield from self.gmem.handle_coherence(msg))
        if t is MsgType.LOCK_REQ:
            return (yield from self.sync.handle_lock(msg))
        if t is MsgType.UNLOCK_REQ:
            return (yield from self.sync.handle_unlock(msg))
        if t is MsgType.BARRIER_REQ:
            return (yield from self.sync.handle_barrier(msg))
        raise ValueError(f"model kernel cannot dispatch {t}")


#: written values per worker in the coherence scope (worker i writes
#: ``10 * i + 1``, so any post-write read must see one of these)
def _coherence_value(worker: int) -> float:
    return float(10 * worker + 1)


class DSEHarness:
    """One bounded DSE scenario (lock/barrier/coherence/gather).

    The only nondeterminism is inter-kernel message delivery order --
    there are no timers, losses, or duplications at this layer (the
    transport scopes cover those), so ``enabled()`` is just one
    ``deliver`` action per pooled message and a terminal state is simply
    an empty pool.
    """

    benign_exceptions = ()

    def __init__(
        self,
        scenario: str,
        *,
        workers: int = 2,
        rounds: int = 1,
        mutant: Optional[str] = None,
    ):
        if mutant not in (None, "no-barrier"):
            raise ValueError(f"unknown dse mutant {mutant!r}")
        if mutant == "no-barrier" and scenario != "gather":
            raise ValueError("no-barrier mutant only applies to the gather scope")
        self.scenario = scenario
        self.n_workers = workers
        self.rounds = rounds
        self.mutant = mutant
        self.sim = Simulator()
        self.pool: List[list] = []  # [desc, msg]
        self._waiters: Dict[Tuple[int, int], Any] = {}
        self._seq_alias: Dict[int, int] = {}
        self.in_cs: List[int] = []
        self.errors: List[str] = []
        self.rounds_done = [0] * workers
        self._last_generation = 0
        self.duplicate_responses = 0

        # Gather runs one worker per kernel (the cross-homed cells *are*
        # the point); the other scopes park kernel 0 as a pure server --
        # lock home, barrier coordinator, memory home, directory home --
        # so every worker operation is a remote message the scheduler can
        # reorder.  A worker co-located with the server would run its
        # whole round inline and leave nothing to explore.
        cluster = workers if scenario == "gather" else workers + 1
        #: lock named so ``sum(name.encode()) % cluster`` homes at kernel 0
        self.lock_name = "L" * cluster
        self.kernels = [ModelKernel(self, k, cluster) for k in range(cluster)]
        if scenario == "coherence":
            total_words = 1
            for kernel in self.kernels:
                kernel.gmem = CachingGlobalMemory(kernel, total_words, 1)
        else:
            # gather needs one cross-homed word per kernel; lock/barrier
            # just need a counter word homed at kernel 0.
            total_words = cluster if scenario == "gather" else 1
            for kernel in self.kernels:
                kernel.gmem = GlobalMemoryManager(kernel, total_words, 1)

        bodies = {
            "lock": self._lock_worker,
            "barrier": self._barrier_worker,
            "coherence": self._coherence_worker,
            "gather": self._gather_worker,
        }
        try:
            body = bodies[scenario]
        except KeyError:
            raise ValueError(f"unknown dse scenario {scenario!r}") from None
        self.workers = [
            self.sim.process(body(i), name=f"{scenario}:{i}")
            for i in range(workers)
        ]
        self._drain()

    def _worker_kernel(self, worker: int) -> ModelKernel:
        if self.scenario == "gather":
            return self.kernels[worker]
        return self.kernels[worker + 1]  # kernel 0 is the server

    # -- worker bodies ----------------------------------------------------
    def _lock_worker(self, worker: int):
        kernel = self._worker_kernel(worker)
        for _ in range(self.rounds):
            yield from kernel.sync.acquire(self.lock_name)
            self.in_cs.append(worker)
            current = yield from kernel.gmem.read(0, 1)
            yield from kernel.gmem.write(0, [float(current[0]) + 1.0])
            self.in_cs.remove(worker)
            yield from kernel.sync.release(self.lock_name)
            self.rounds_done[worker] += 1

    def _barrier_worker(self, worker: int):
        kernel = self._worker_kernel(worker)
        for _ in range(self.rounds):
            yield from kernel.sync.barrier("B", self.n_workers)
            self.rounds_done[worker] += 1

    def _coherence_worker(self, worker: int):
        kernel = self._worker_kernel(worker)
        legal = {_coherence_value(w) for w in range(self.n_workers)}
        for _ in range(self.rounds):
            yield from kernel.gmem.write(0, [_coherence_value(worker)])
            value = yield from kernel.gmem.read(0, 1)
            if float(value[0]) not in legal:
                self.errors.append(
                    f"worker {worker} read {float(value[0]):g}, not one of {sorted(legal)}"
                )
            self.rounds_done[worker] += 1

    def _gather_worker(self, worker: int):
        # Worker i fills its neighbour's cell, synchronizes, then reads its
        # own cell -- the Gauss-Seidel gather pattern.  The "no-barrier"
        # mutant reproduces PR 3's race: the local read can see the zero
        # initial value because the neighbour's remote write is still
        # in flight.
        kernel = self._worker_kernel(worker)
        neighbour = (worker + 1) % self.n_workers
        yield from kernel.gmem.write(neighbour, [float(worker + 1)])
        if self.mutant != "no-barrier":
            yield from kernel.sync.barrier("gather", self.n_workers)
        value = yield from kernel.gmem.read(worker, 1)
        writer = (worker - 1) % self.n_workers
        want = float(writer + 1)
        if float(value[0]) != want:
            self.errors.append(
                f"worker {worker} gathered {float(value[0]):g}, expected {want:g} "
                "(stale read: neighbour's write not yet visible)"
            )
        self.rounds_done[worker] += 1

    # -- pool plumbing ----------------------------------------------------
    def _alias(self, seq: int) -> int:
        alias = self._seq_alias.get(seq)
        if alias is None:
            alias = self._seq_alias[seq] = len(self._seq_alias)
        return alias

    def _msg_desc(self, msg: DSEMessage) -> str:
        data = msg.data
        if data is None:
            digest = ""
        elif isinstance(data, np.ndarray):
            digest = ",".join(f"{v:g}" for v in data.ravel())
        else:
            digest = repr(data)
        return (
            f"{msg.msg_type.value} k{msg.src_kernel}>k{msg.dst_kernel} "
            f"s{self._alias(msg.seq)} addr={msg.addr} n={msg.nwords} "
            f"name={msg.name!r} st={msg.status} [{digest}]"
        )

    def _pool_add(self, msg: DSEMessage) -> None:
        self.pool.append([self._msg_desc(msg), msg])

    def _register_waiter(self, kernel_id: int, seq: int):
        self._alias(seq)
        waiter = self.sim.event(name=f"waiter:k{kernel_id}:s{self._alias(seq)}")
        self._waiters[(kernel_id, seq)] = waiter
        return waiter

    def _resolve_waiter(self, kernel_id: int, response: DSEMessage) -> None:
        waiter = self._waiters.pop((kernel_id, response.seq), None)
        if waiter is None:
            self.duplicate_responses += 1
            return
        waiter.succeed(response)

    def _serve(self, kernel: ModelKernel, msg: DSEMessage):
        response = yield from kernel.dispatch(msg)
        if response is not None:
            yield from kernel.exchange.reply(response)

    def _drain(self) -> None:
        sim = self.sim
        while sim.peek() <= sim.now:
            sim.step()

    # -- scheduler interface ----------------------------------------------
    def enabled(self) -> List[Tuple[str, ...]]:
        return [("deliver", desc) for desc in sorted({e[0] for e in self.pool})]

    def apply(self, action: Tuple[str, ...]) -> None:
        op = action[0]
        if op != "deliver":
            raise ValueError(f"unknown action {action!r}")
        for i, entry in enumerate(self.pool):
            if entry[0] == action[1]:
                msg = self.pool.pop(i)[1]
                break
        else:
            raise KeyError(f"no pooled message {action[1]!r}")
        kernel = self.kernels[msg.dst_kernel]
        if msg.is_request:
            self.sim.process(self._serve(kernel, msg), name=f"serve:{action[1]}")
        else:
            self._resolve_waiter(msg.dst_kernel, msg)
        self._drain()

    def is_truncated(self) -> bool:
        return False

    def independent(self, a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
        # Deliveries commute iff they target different kernels: a handler
        # only mutates its own kernel's state (plus the shared pool, which
        # is order-insensitive).
        da = self._desc_dst(a[1])
        db = self._desc_dst(b[1])
        return da is not None and db is not None and da != db

    def _desc_dst(self, desc: str) -> Optional[int]:
        for entry in self.pool:
            if entry[0] == desc:
                return entry[1].dst_kernel
        return None

    # -- verdicts ----------------------------------------------------------
    def invariant_errors(self) -> List[str]:
        errors = list(self.errors)
        if len(self.in_cs) > 1:
            errors.append(f"mutual exclusion violated: workers {self.in_cs} in CS")
        generation = self._barrier_generation()
        if generation is not None:
            if generation < self._last_generation:
                errors.append(
                    f"barrier generation went backwards: "
                    f"{self._last_generation} -> {generation}"
                )
            self._last_generation = max(self._last_generation, generation)
        if self.scenario == "barrier" and self.rounds_done:
            spread = max(self.rounds_done) - min(self.rounds_done)
            if spread > 1:
                errors.append(f"barrier round spread {self.rounds_done} > 1")
        errors.extend(self._coherence_invariants())
        return errors

    def _barrier_generation(self) -> Optional[int]:
        barriers = self.kernels[0].sync._barriers
        for state in barriers.values():
            return state.generation
        return None

    def _coherence_invariants(self) -> List[str]:
        if self.scenario != "coherence":
            return []
        errors = []
        blocks = set()
        for kernel in self.kernels:
            blocks.update(kernel.gmem._cache)
            blocks.update(kernel.gmem._directory)
        for block in sorted(blocks):
            holders = []
            for kernel in self.kernels:
                line = kernel.gmem._cache.get(block)
                if line is None:
                    continue
                if line.dirty and line.state != EXCLUSIVE:
                    errors.append(
                        f"k{kernel.kernel_id} block {block}: dirty but "
                        f"state {line.state!r}"
                    )
                holders.append((kernel.kernel_id, line.state))
            exclusive = [k for k, state in holders if state == EXCLUSIVE]
            if len(exclusive) > 1:
                errors.append(
                    f"block {block}: multiple exclusive holders {exclusive}"
                )
            if exclusive and len(holders) > 1:
                errors.append(
                    f"block {block}: exclusive holder k{exclusive[0]} "
                    f"coexists with {holders}"
                )
        return errors

    def goal_errors(self) -> List[str]:
        errors = []
        for worker in self.workers:
            if not worker.triggered:
                errors.append(f"worker {worker.name!r} never completed (wedged)")
        if self._waiters:
            pending = sorted(
                f"k{k}:s{self._alias(seq)}" for (k, seq) in self._waiters
            )
            errors.append(f"dangling response waiters: {pending} (lost wakeup)")
        if self.duplicate_responses:
            errors.append(f"{self.duplicate_responses} unclaimed responses")
        if self.scenario == "lock":
            counter = float(self.kernels[0].gmem._local_read(0, 1)[0])
            want = float(self.n_workers * self.rounds)
            if counter != want:
                errors.append(f"lock-protected counter {counter} != {want}")
            for state in self.kernels[0].sync._locks.values():
                if state.held_by != -1 or state.waiters:
                    errors.append(
                        f"terminal lock state held_by={state.held_by} "
                        f"waiters={len(state.waiters)}"
                    )
        if self.scenario == "barrier":
            generation = self._barrier_generation()
            if generation != self.rounds:
                errors.append(
                    f"terminal barrier generation {generation} != {self.rounds}"
                )
        if self.scenario == "coherence":
            errors.extend(self._coherence_terminal_errors())
        return errors

    def _coherence_terminal_errors(self) -> List[str]:
        errors = []
        legal = {_coherence_value(w) for w in range(self.n_workers)}
        home = self.kernels[0].gmem
        for kernel in self.kernels:
            if kernel.gmem._pending:
                errors.append(
                    f"k{kernel.kernel_id}: pending fills "
                    f"{sorted(kernel.gmem._pending)} at terminal state"
                )
        for block, entry in home._directory.items():
            if entry.mutex.locked or entry.mutex.queue:
                errors.append(f"block {block}: directory mutex still held")
            if entry.owner is not None:
                line = self.kernels[entry.owner].gmem._cache.get(block)
                if line is None or line.state != EXCLUSIVE:
                    errors.append(
                        f"block {block}: directory owner k{entry.owner} "
                        "holds no exclusive line"
                    )
        # The effective value (owner's dirty line, else home storage) must
        # be one of the values actually written.
        value = float(home._local_read(0, 1)[0])
        for kernel in self.kernels:
            line = kernel.gmem._cache.get(0)
            if line is not None and line.dirty:
                value = float(line.data[0])
        if value not in legal:
            errors.append(f"terminal memory value {value} not in {sorted(legal)}")
        return errors

    def fingerprint(self) -> tuple:
        kernels = []
        for kernel in self.kernels:
            sync = kernel.sync
            locks = tuple(
                (
                    name,
                    state.held_by,
                    state.held_acc,
                    tuple(self._alias(m.seq) for m in state.waiters),
                )
                for name, state in sorted(sync._locks.items())
            )
            barriers = tuple(
                (
                    name,
                    state.generation,
                    tuple(sorted(self._alias(m.seq) for m in state.arrived)),
                )
                for name, state in sorted(sync._barriers.items())
            )
            gmem = kernel.gmem
            mem: tuple = (gmem.storage.tobytes(),)
            if isinstance(gmem, CachingGlobalMemory):
                cache = tuple(
                    (block, line.state, line.dirty, line.data.tobytes())
                    for block, line in sorted(gmem._cache.items())
                )
                directory = tuple(
                    (
                        block,
                        entry.owner,
                        tuple(sorted(entry.sharers)),
                        entry.mutex.locked,
                        len(entry.mutex.queue),
                    )
                    for block, entry in sorted(gmem._directory.items())
                )
                mem = mem + (cache, directory, tuple(sorted(gmem._pending)))
            kernels.append((locks, barriers, mem))
        return (
            tuple(sorted(entry[0] for entry in self.pool)),
            tuple(
                sorted((k, self._alias(seq)) for (k, seq) in self._waiters)
            ),
            tuple(kernels),
            tuple(self.in_cs),
            tuple(self.rounds_done),
            tuple(self.errors),
            self.duplicate_responses,
            tuple(worker.triggered for worker in self.workers),
        )
