"""The explicit-state exploration core: stateless DFS + sleep sets.

The scheduler owns *no* protocol knowledge.  It works against a harness
object (built fresh for every path by a zero-argument factory) exposing:

``enabled()``
    Sorted list of currently enabled actions.  An action is a small
    tuple of strings/ints, e.g. ``("deliver", desc)`` -- JSON-friendly
    so counterexamples serialize as-is.
``apply(action)``
    Execute one action and drain the simulation to quiescence.
``invariant_errors()``
    Safety-invariant violations at the current (quiescent) state.
``fingerprint()``
    Canonical hashable state summary for visited-set pruning.
``goal_errors()``
    Liveness/functional errors, consulted only at *terminal* states
    (no enabled actions, nothing truncated): a non-empty list means the
    system wedged short of its goal -- the "lost wakeup" signature.
``is_truncated()``
    True when ``enabled()`` is empty because a scope *budget* ran out
    (e.g. no ticks left while retransmit timers are pending); such
    paths end benignly instead of being reported as wedges.
``independent(a, b)``
    Commutativity oracle for sleep-set partial-order reduction.
``benign_exceptions``
    Exception types that mean "the protocol gave up as designed"
    (e.g. retry exhaustion under adversarial scheduling) -- counted,
    not reported.

Exploration is *stateless* in the model-checking sense: to branch, the
scheduler re-executes a fresh harness from the root replaying the choice
prefix, which keeps harnesses free of any snapshot/undo machinery.  The
visited set records, per fingerprint, the sleep sets it was reached
with; a state is pruned only when a recorded sleep set is a subset of
the current one (the standard soundness condition for combining sleep
sets with state caching).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

#: an action is a JSON-friendly tuple, e.g. ``("deliver", "<desc>")``
Action = Tuple[str, ...]


@dataclass
class ExplorationStats:
    """Counters describing one exploration run."""

    paths: int = 0  #: complete paths that reached a terminal state
    truncated: int = 0  #: paths cut off by a depth/budget bound
    benign_exhaustions: int = 0  #: paths ended by a declared protocol give-up
    choice_points: int = 0  #: states with >1 runnable action
    actions: int = 0  #: total actions executed (including prefix replays)
    states: int = 0  #: distinct fingerprints recorded
    pruned: int = 0  #: branches cut by the visited set
    sleep_skips: int = 0  #: enabled actions skipped by sleep sets
    max_depth: int = 0  #: longest path, in actions

    def summary(self) -> str:
        return (
            f"paths={self.paths} truncated={self.truncated} "
            f"gave_up={self.benign_exhaustions} "
            f"choice_points={self.choice_points} actions={self.actions} "
            f"states={self.states} pruned={self.pruned} "
            f"sleep_skips={self.sleep_skips} max_depth={self.max_depth}"
        )


@dataclass
class Violation:
    """One invariant/goal/crash violation with its full choice trace."""

    kind: str  #: "invariant" | "wedge" | "crash"
    detail: str
    trace: Tuple[Action, ...]

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail} ({len(self.trace)} steps)"


@dataclass
class Counterexample:
    """A serializable violation: scope name + exact choice sequence.

    ``save``/``load`` round-trip through JSON so traces can be committed
    as a regression corpus and re-executed standalone (the trace *is*
    the schedule; replaying it through a fresh harness is deterministic).
    """

    scope: str
    kind: str
    detail: str
    trace: Tuple[Action, ...]

    def to_json(self) -> str:
        return json.dumps(
            {
                "scope": self.scope,
                "kind": self.kind,
                "detail": self.detail,
                "trace": [list(a) for a in self.trace],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        raw = json.loads(text)
        return cls(
            scope=raw["scope"],
            kind=raw["kind"],
            detail=raw["detail"],
            trace=tuple(tuple(a) for a in raw["trace"]),
        )

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "Counterexample":
        return cls.from_json(Path(path).read_text())


@dataclass
class CheckResult:
    """Outcome of exploring one scope."""

    scope: str
    violations: List[Violation] = field(default_factory=list)
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    #: True when the scope was explored to exhaustion (no caps hit)
    complete: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations

    def counterexamples(self) -> List[Counterexample]:
        return [
            Counterexample(self.scope, v.kind, v.detail, v.trace)
            for v in self.violations
        ]


class _PathEnded(Exception):
    """Internal: the current path terminated (benignly or with a verdict)."""


def _apply(harness, action: Action, stats: ExplorationStats):
    """Run one action; returns None, "benign", or a crash Violation."""
    stats.actions += 1
    try:
        harness.apply(action)
    except harness.benign_exceptions as exc:
        return "benign:" + type(exc).__name__
    except Exception as exc:  # noqa: BLE001 - any other escape is a finding
        return Violation(
            "crash", f"{type(exc).__name__}: {exc}", trace=()
        )
    return None


def explore(
    make_harness: Callable[[], object],
    *,
    scope: str = "scope",
    max_steps: int = 60,
    max_violations: int = 1,
    max_paths: int = 500_000,
    por: bool = True,
) -> CheckResult:
    """Exhaustively explore every schedule of ``make_harness()``.

    ``max_steps`` bounds path depth (paths beyond it count as
    truncated), ``max_violations`` stops the search after that many
    findings, and ``max_paths`` is a runaway guard -- hitting it clears
    ``result.complete``.  ``por=False`` disables sleep-set reduction
    (the visited set stays on), which is useful to cross-check that
    reduction does not change the verdict.
    """
    result = CheckResult(scope=scope)
    stats = result.stats
    # visited: fingerprint -> list of sleep frozensets it was reached with
    visited: dict = {}
    # DFS stack of pending branches: (choice prefix, sleep set at branch)
    stack: List[Tuple[Tuple[Action, ...], frozenset]] = [((), frozenset())]

    while stack:
        if stats.paths + stats.truncated + stats.benign_exhaustions >= max_paths:
            result.complete = False
            break
        if len(result.violations) >= max_violations:
            break
        prefix, sleep_frozen = stack.pop()
        harness = make_harness()
        abandoned = False
        for action in prefix:
            # Prefixes replay states that were checked when first pushed,
            # so verdicts here can only come from the new final action.
            verdict = _apply(harness, action, stats)
            if verdict is not None:
                if isinstance(verdict, Violation):
                    verdict.trace = prefix
                    result.violations.append(verdict)
                else:
                    stats.benign_exhaustions += 1
                abandoned = True
                break
        if abandoned:
            continue

        trace = list(prefix)
        sleep = set(sleep_frozen)
        while True:
            stats.max_depth = max(stats.max_depth, len(trace))
            errors = harness.invariant_errors()
            if errors:
                result.violations.append(
                    Violation("invariant", "; ".join(errors), tuple(trace))
                )
                break

            fp = harness.fingerprint()
            recorded = visited.get(fp)
            if recorded is not None and any(s <= sleep for s in recorded):
                stats.pruned += 1
                break
            if recorded is None:
                visited[fp] = [frozenset(sleep)]
                stats.states += 1
            else:
                # Keep only minimal sleep sets for this fingerprint.
                recorded[:] = [s for s in recorded if not (sleep < s)]
                recorded.append(frozenset(sleep))

            enabled = harness.enabled()
            if not enabled:
                if harness.is_truncated():
                    stats.truncated += 1
                else:
                    goal = harness.goal_errors()
                    if goal:
                        result.violations.append(
                            Violation("wedge", "; ".join(goal), tuple(trace))
                        )
                    else:
                        stats.paths += 1
                break
            if len(trace) >= max_steps:
                stats.truncated += 1
                break

            runnable = [a for a in enabled if a not in sleep]
            stats.sleep_skips += len(enabled) - len(runnable)
            if not runnable:
                # Every enabled action is covered by a sibling branch.
                stats.pruned += 1
                break
            if len(runnable) > 1:
                stats.choice_points += 1
                base = tuple(trace)
                for j in range(len(runnable) - 1, 0, -1):
                    branch_action = runnable[j]
                    if por:
                        branch_sleep = frozenset(
                            b
                            # set -> set, so order cannot leak:
                            for b in set(runnable[:j]) | sleep  # lint: allow-unsorted-set-iter
                            if harness.independent(b, branch_action)
                        )
                    else:
                        branch_sleep = frozenset()
                    stack.append((base + (branch_action,), branch_sleep))

            first = runnable[0]
            if por:
                sleep = {  # set -> set, so order cannot leak:
                    b for b in sleep if harness.independent(b, first)  # lint: allow-unsorted-set-iter
                }
            verdict = _apply(harness, first, stats)
            trace.append(first)
            if verdict is not None:
                if isinstance(verdict, Violation):
                    verdict.trace = tuple(trace)
                    result.violations.append(verdict)
                else:
                    stats.benign_exhaustions += 1
                break

    return result


def replay_counterexample(
    make_harness: Callable[[], object],
    counterexample: Counterexample,
) -> Iterator[Tuple[int, Action, List[str]]]:
    """Re-execute a counterexample trace step by step.

    Yields ``(step, action, invariant_errors)`` after each applied
    action; at the final step the harness's goal errors are appended so
    wedge counterexamples surface their verdict too.  Replay is
    deterministic: the trace *is* the complete schedule.
    """
    harness = make_harness()
    stats = ExplorationStats()
    last = len(counterexample.trace) - 1
    for step, action in enumerate(counterexample.trace):
        verdict = _apply(harness, action, stats)
        errors = list(harness.invariant_errors())
        if isinstance(verdict, Violation):
            errors.append(f"crash: {verdict.detail}")
        elif isinstance(verdict, str):
            errors.append(verdict)
        if step == last and not harness.enabled() and not harness.is_truncated():
            errors.extend(harness.goal_errors())
        yield step, action, errors
        if verdict is not None:
            return


def violation_summary(result: CheckResult) -> str:
    """One line per violation -- shared by the CLI and tests."""
    if result.ok:
        return f"{result.scope}: ok ({result.stats.summary()})"
    lines = [f"{result.scope}: {len(result.violations)} violation(s)"]
    lines.extend(f"  {v}" for v in result.violations)
    return "\n".join(lines)
