"""Write-invalidate caching DSM (coherence ablation).

The baseline DSE global memory (:mod:`repro.dse.gmem`) sends a message for
*every* non-home access.  This policy instead caches blocks at readers and
writers with a directory at each block's home kernel:

* **read miss** → ``GM_FETCH_REQ`` to home; home recalls an exclusive owner
  if there is one, then replies with the block; requester caches it SHARED.
* **write miss / upgrade** → ``GM_OWN_REQ`` to home; home recalls the owner
  and invalidates all sharers, then grants EXCLUSIVE ownership with data.
* **recall/invalidate** → ``GM_INV_REQ`` to the holder; a dirty owner
  returns the block contents, which home folds into its storage.

Repeated access to a cached block is then a local, message-free operation —
the trade the ablation bench quantifies against the home policy.

Correctness notes (the subtle bits, enforced by tests):

* home serialises directory transactions per block with a mutex;
* a requester installs its block *synchronously* upon processing the
  response, and marks the block "pending" from request to install so that
  an overlapping invalidation waits for the install instead of missing it;
* requesters never hold any lock across a remote request (no distributed
  deadlock).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Set, TYPE_CHECKING

import numpy as np

from ..errors import GlobalMemoryError
from ..hardware.cpu import Work
from ..sim.core import Event
from ..sim.resources import Mutex
from .gmem import GlobalMemoryManager, _GM_CALL_WORK
from .messages import DSEMessage, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import DSEKernel

__all__ = ["CachingGlobalMemory", "CacheLine"]

SHARED = "S"
EXCLUSIVE = "E"


class CacheLine:
    """One locally cached global-memory block."""

    __slots__ = ("data", "state", "dirty")

    def __init__(self, data: np.ndarray, state: str):
        self.data = data
        self.state = state
        self.dirty = False


class _DirEntry:
    """Home-side directory state for one block."""

    __slots__ = ("sharers", "owner", "mutex")

    def __init__(self, mutex: Mutex):
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None
        self.mutex = mutex


class CachingGlobalMemory(GlobalMemoryManager):
    """Directory-based write-invalidate DSM."""

    policy_name = "cache"

    def __init__(self, kernel: "DSEKernel", total_words: int, block_words: int):
        super().__init__(kernel, total_words, block_words)
        self._cache: Dict[int, CacheLine] = {}
        self._pending: Dict[int, Event] = {}
        self._directory: Dict[int, _DirEntry] = {}

    # -- block arithmetic ---------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.block_words

    def block_span(self, addr: int, nwords: int):
        """Yield (block, block_start, lo, hi) covering [addr, addr+n)."""
        self._check_range(addr, nwords)
        end = addr + nwords
        b = self.block_of(addr)
        while True:
            start = b * self.block_words
            stop = start + self.block_words
            lo = max(addr, start)
            hi = min(end, stop)
            yield b, start, lo, hi
            if hi >= end:
                break
            b += 1

    def _dir_entry(self, block: int) -> _DirEntry:
        entry = self._directory.get(block)
        if entry is None:
            entry = self._directory[block] = _DirEntry(
                Mutex(self.kernel.sim, name=f"dir:k{self.kernel.kernel_id}:b{block}")
            )
        return entry

    # -- public API ------------------------------------------------------------
    def read(
        self, addr: int, nwords: int, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, np.ndarray]:
        if self._san_race is not None:
            self._san_race.on_access(
                self.kernel.kernel_id if accessor is None else accessor,
                addr, nwords, False, self.kernel.sim.now,
            )
        yield from self.kernel.unix_process.compute(_GM_CALL_WORK)
        if self.batching:
            yield from self._prefetch_blocks(addr, nwords, exclusive=False, trace=trace)
        out = np.empty(nwords, dtype=np.float64)
        for block, start, lo, hi in self.block_span(addr, nwords):
            line = yield from self._ensure_cached(block, exclusive=False, trace=trace)
            yield from self.kernel.unix_process.compute(Work(mems=hi - lo))
            out[lo - addr : hi - addr] = line.data[lo - start : hi - start]
        self.stats.counter("words_read").increment(nwords)
        return out

    def write(
        self, addr: int, values: Any, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, None]:
        data = np.asarray(values, dtype=np.float64).ravel()
        nwords = len(data)
        if self._san_race is not None:
            self._san_race.on_access(
                self.kernel.kernel_id if accessor is None else accessor,
                addr, nwords, True, self.kernel.sim.now,
            )
        yield from self.kernel.unix_process.compute(_GM_CALL_WORK)
        if self.batching:
            yield from self._prefetch_blocks(addr, nwords, exclusive=True, trace=trace)
        for block, start, lo, hi in self.block_span(addr, nwords):
            line = yield from self._ensure_cached(block, exclusive=True, trace=trace)
            yield from self.kernel.unix_process.compute(Work(mems=hi - lo))
            line.data[lo - start : hi - start] = data[lo - addr : hi - addr]
            line.dirty = True
        self.stats.counter("words_written").increment(nwords)

    # -- cache fill --------------------------------------------------------------
    def _ensure_cached(
        self, block: int, exclusive: bool, trace: Any = None
    ) -> Generator[Event, Any, CacheLine]:
        while True:
            pending = self._pending.get(block)
            if pending is not None:
                yield pending
                continue  # re-check: install happened, state may still be wrong
            line = self._cache.get(block)
            if line is not None and (line.state == EXCLUSIVE or not exclusive):
                if line is not None and exclusive:
                    self.stats.counter("hits_exclusive").increment()
                else:
                    self.stats.counter("hits").increment()
                return line
            break
        # Miss (or shared->exclusive upgrade): transact with home.
        self.stats.counter("upgrades" if line is not None else "misses").increment()
        marker = self.kernel.sim.event(name=f"fill:b{block}")
        self._pending[block] = marker
        try:
            msg = DSEMessage(
                msg_type=MsgType.GM_OWN_REQ if exclusive else MsgType.GM_FETCH_REQ,
                src_kernel=self.kernel.kernel_id,
                dst_kernel=self.home_of(block * self.block_words),
                addr=block * self.block_words,
                nwords=self.block_words,
                trace=trace,
            )
            rsp = yield from self.kernel.exchange.request(msg)
            if rsp.status != "ok":
                raise GlobalMemoryError(f"coherence fill failed: {rsp.status}")
            # Install SYNCHRONOUSLY (no yields) so no invalidation can race
            # between response processing and install.
            line = CacheLine(
                np.array(rsp.data, dtype=np.float64),
                EXCLUSIVE if exclusive else SHARED,
            )
            self._cache[block] = line
            return line
        finally:
            del self._pending[block]
            if not marker.triggered:
                marker.succeed()

    # -- batched fills (gmem_batching) ----------------------------------------
    def _prefetch_blocks(
        self, addr: int, nwords: int, exclusive: bool, trace: Any = None
    ) -> Generator[Event, Any, None]:
        """Fetch runs of contiguous missing blocks with one message each.

        Only whole misses (no line, no fill in flight) are grouped; upgrades
        and pending blocks fall through to :meth:`_ensure_cached`, which
        does the per-block bookkeeping.  Runs shorter than two blocks are
        not worth a special message and fall through too.
        """
        missing = [
            block
            for block, _start, _lo, _hi in self.block_span(addr, nwords)
            if block not in self._pending and block not in self._cache
        ]
        run: list = []
        runs = []
        for block in missing:
            if run and (
                block != run[-1] + 1
                or self.home_of(block * self.block_words)
                != self.home_of(run[0] * self.block_words)
            ):
                runs.append(run)
                run = []
            run.append(block)
        if run:
            runs.append(run)
        for blocks in runs:
            if len(blocks) >= 2:
                yield from self._fetch_group(blocks, exclusive, trace=trace)

    def _fetch_group(
        self, blocks: list, exclusive: bool, trace: Any = None
    ) -> Generator[Event, Any, None]:
        """One multi-block fill: all blocks share a home and a pending
        marker; lines are installed synchronously on response."""
        marker = self.kernel.sim.event(name=f"fill:b{blocks[0]}..b{blocks[-1]}")
        for block in blocks:
            self._pending[block] = marker
        self.stats.counter("misses").increment(len(blocks))
        self.stats.counter("batched_fills").increment()
        try:
            addr = blocks[0] * self.block_words
            msg = DSEMessage(
                msg_type=MsgType.GM_OWN_REQ if exclusive else MsgType.GM_FETCH_REQ,
                src_kernel=self.kernel.kernel_id,
                dst_kernel=self.home_of(addr),
                addr=addr,
                nwords=len(blocks) * self.block_words,
                trace=trace,
            )
            rsp = yield from self.kernel.exchange.request(msg)
            if rsp.status != "ok":
                raise GlobalMemoryError(f"coherence fill failed: {rsp.status}")
            data = np.asarray(rsp.data, dtype=np.float64)
            state = EXCLUSIVE if exclusive else SHARED
            # Install SYNCHRONOUSLY (no yields), as in _ensure_cached.
            for i, block in enumerate(blocks):
                self._cache[block] = CacheLine(
                    data[i * self.block_words : (i + 1) * self.block_words].copy(),
                    state,
                )
        finally:
            for block in blocks:
                del self._pending[block]
            if not marker.triggered:
                marker.succeed()

    # -- home-side directory + holder-side invalidation ------------------------
    def handle_coherence(
        self, msg: DSEMessage
    ) -> Generator[Event, Any, Optional[DSEMessage]]:
        t = msg.msg_type
        if t is MsgType.GM_INV_REQ:
            return (yield from self._handle_invalidate(msg))
        if t is MsgType.GM_WB_REQ:
            return (yield from self._handle_writeback(msg))
        if t in (MsgType.GM_FETCH_REQ, MsgType.GM_OWN_REQ):
            return (yield from self._handle_fill(msg))
        raise GlobalMemoryError(f"unexpected coherence message {t}")

    def _handle_fill(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        if not self._owns(msg.addr, msg.nwords):
            return msg.make_response(status="not-home", nwords=0)
        # A batched fill covers several whole blocks; the single-block case
        # is just a span of one.  ALL block mutexes are taken upfront in
        # ascending order — never incrementally — so two overlapping batched
        # fills cannot deadlock, and no per-block directory state is touched
        # until every involved transaction before us has fully drained.
        blocks = list(
            range(self.block_of(msg.addr), self.block_of(msg.addr + msg.nwords - 1) + 1)
        )
        entries = [self._dir_entry(block) for block in blocks]
        reqs = []
        try:
            for entry in entries:
                req = entry.mutex.request()
                yield req
                reqs.append(req)
            requester = msg.src_kernel
            exclusive = msg.msg_type is MsgType.GM_OWN_REQ
            for block, entry in zip(blocks, entries):
                addr = block * self.block_words
                # Recall the current exclusive owner, folding dirty data home.
                if entry.owner is not None and entry.owner != requester:
                    yield from self._recall(entry, block, addr, trace=msg.trace)
                if exclusive:
                    # Invalidate every other sharer, then grant ownership.
                    for sharer in sorted(entry.sharers - {requester}):
                        yield from self._send_invalidate(
                            sharer, addr, entry, block, trace=msg.trace
                        )
                    entry.sharers = set()
                    entry.owner = requester
                    self.stats.counter("grants_exclusive").increment()
                else:
                    if entry.owner == requester:
                        entry.owner = None  # downgrade: owner re-reading via fetch
                    entry.sharers.add(requester)
                    self.stats.counter("grants_shared").increment()
            yield from self.kernel.unix_process.compute(Work(mems=msg.nwords, iops=120))
            return msg.make_response(data=self._local_read(msg.addr, msg.nwords))
        finally:
            for entry, req in zip(entries, reqs):
                entry.mutex.release(req)

    def _recall(
        self, entry: _DirEntry, block: int, addr: int, trace: Any = None
    ) -> Generator[Event, Any, None]:
        owner = entry.owner
        assert owner is not None
        yield from self._send_invalidate(owner, addr, entry, block, trace=trace)
        entry.owner = None

    def _send_invalidate(
        self, holder: int, addr: int, entry: _DirEntry, block: int, trace: Any = None
    ) -> Generator[Event, Any, None]:
        msg = DSEMessage(
            msg_type=MsgType.GM_INV_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=holder,
            addr=addr,
            nwords=self.block_words,
            trace=trace,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        self.stats.counter("invalidations_sent").increment()
        entry.sharers.discard(holder)
        if rsp.nwords:  # dirty data returned: fold into home storage
            self._local_write(addr, np.asarray(rsp.data, dtype=np.float64))

    def _handle_invalidate(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        block = self.block_of(msg.addr)
        line = self._cache.pop(block, None)
        if line is None:
            # No line yet: the only legal way home can target us is a grant
            # whose response is processed but not installed — wait for the
            # install, then invalidate.  (A present line is invalidated
            # immediately, even mid-upgrade; waiting on an upgrade's pending
            # marker here would deadlock through home's directory mutex.)
            pending = self._pending.get(block)
            if pending is not None:
                yield pending
                line = self._cache.pop(block, None)
        self.stats.counter("invalidations_received").increment()
        yield from self.kernel.unix_process.compute(Work(iops=80))
        if line is not None and line.dirty:
            return msg.make_response(data=line.data, nwords=self.block_words)
        return msg.make_response(nwords=0)

    def _handle_writeback(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        if not self._owns(msg.addr, msg.nwords):
            return msg.make_response(status="not-home", nwords=0)
        yield from self.kernel.unix_process.compute(Work(mems=msg.nwords))
        self._local_write(msg.addr, np.asarray(msg.data, dtype=np.float64))
        self.stats.counter("writebacks").increment()
        return msg.make_response(nwords=0)

    # -- introspection (tests) ------------------------------------------------
    def cached_state(self, block: int) -> Optional[str]:
        line = self._cache.get(block)
        return line.state if line else None
