"""Parallel process management module.

Implements the paper's "parallel process invocation/termination": the
parallel application (on kernel 0) asks remote kernels to start *DSE
processes* — coroutines that run inside the target kernel's UNIX process,
exactly as in the paper's one-UNIX-process organisation.  Completion flows
back as a one-way ``PROC_DONE`` notification carrying the return value.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from ..errors import ProcessManagementError
from ..sim.core import Event
from ..sim.monitor import StatSet
from .messages import DSEMessage, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import DSEKernel

__all__ = ["ProcessManager", "RemoteProcHandle", "TaskLost"]

#: accounted wire size of a process-invocation payload (entry point name,
#: marshalled arguments) — a small pickled structure in the real system
_SPAWN_EXTRA_BYTES = 192
_DONE_EXTRA_BYTES = 96


class TaskLost:
    """Sentinel completion value for a DSE process lost to a crash.

    Delivered through the normal ``done_event`` (succeed, not fail) so
    waiters that were not written for failures never blow up; retry-aware
    callers (``taskfarm.farm_dynamic``, the resilient runner) recognise it
    with ``isinstance``.
    """

    __slots__ = ("time", "detail")

    def __init__(self, time: float = 0.0, detail: str = ""):
        self.time = time
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskLost t={self.time:.6f} {self.detail!r}>"


class RemoteProcHandle:
    """Tracks one invoked DSE process until its PROC_DONE arrives."""

    def __init__(self, kernel_id: int, rank: int, done_event: Event):
        self.kernel_id = kernel_id
        self.rank = rank
        self.done_event = done_event

    @property
    def finished(self) -> bool:
        return self.done_event.triggered


class ProcessManager:
    """One kernel's parallel process management module."""

    def __init__(self, kernel: "DSEKernel"):
        self.kernel = kernel
        #: rank -> completion event (succeeds with the return value)
        self._pending: Dict[int, Event] = {}
        #: rank -> target kernel, for failing pendings when a kernel dies
        self._pending_target: Dict[int, int] = {}
        #: DSE processes started on this kernel (rank -> sim process)
        self.local_processes: Dict[int, Any] = {}
        self.stats = StatSet(f"procman:k{kernel.kernel_id}")

    # -- invoking side ----------------------------------------------------
    def invoke(
        self,
        target_kernel: int,
        entry: Callable,
        rank: int,
        args: tuple = (),
    ) -> Generator[Event, Any, RemoteProcHandle]:
        """Start ``entry(api, *args)`` as a DSE process on ``target_kernel``."""
        if rank in self._pending:
            raise ProcessManagementError(f"rank {rank} already pending")
        done = self.kernel.sim.event(name=f"proc-done:r{rank}")
        self._pending[rank] = done
        self._pending_target[rank] = target_kernel
        msg = DSEMessage(
            msg_type=MsgType.PROC_START_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=target_kernel,
            addr=rank,
            data=(entry, args),
            extra_bytes=_SPAWN_EXTRA_BYTES,
        )
        try:
            rsp = yield from self.kernel.exchange.request(msg)
        except BaseException:
            self._pending.pop(rank, None)
            self._pending_target.pop(rank, None)
            raise
        if rsp.status != "ok":
            self._pending.pop(rank, None)
            self._pending_target.pop(rank, None)
            raise ProcessManagementError(
                f"invocation of rank {rank} on kernel {target_kernel} failed: {rsp.status}"
            )
        self.stats.counter("invocations").increment()
        return RemoteProcHandle(target_kernel, rank, done)

    def wait(self, handle: RemoteProcHandle) -> Generator[Event, Any, Any]:
        """Await one DSE process's completion; returns its return value."""
        value = yield handle.done_event
        return value

    def wait_all(
        self, handles: List[RemoteProcHandle]
    ) -> Generator[Event, Any, Dict[int, Any]]:
        """Await a set of DSE processes; returns {rank: return value}."""
        results: Dict[int, Any] = {}
        for handle in handles:
            results[handle.rank] = yield handle.done_event
        return results

    # -- invoked side --------------------------------------------------------
    def handle_start(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        entry, args = msg.data
        rank = msg.addr
        invoker = msg.src_kernel
        if rank in self.local_processes:
            return msg.make_response(status="rank-exists")
        runner = self.kernel.start_dse_process(entry, rank, args, invoker)
        self.local_processes[rank] = runner
        self.stats.counter("started").increment()
        return msg.make_response()
        yield  # pragma: no cover - generator parity

    def notify_done(self, rank: int, invoker: int, value: Any) -> Generator[Event, Any, None]:
        """Send PROC_DONE for a finished local DSE process."""
        msg = DSEMessage(
            msg_type=MsgType.PROC_DONE,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=invoker,
            addr=rank,
            data=value,
            extra_bytes=_DONE_EXTRA_BYTES,
        )
        yield from self.kernel.exchange.notify(msg)

    def handle_done(self, msg: DSEMessage) -> Generator[Event, Any, None]:
        rank = msg.addr
        done = self._pending.pop(rank, None)
        self._pending_target.pop(rank, None)
        if done is None:
            if self.kernel._res is not None:
                # A completion can race a crash declaration: the pending was
                # already failed as TaskLost (or forgotten by a rollback).
                self.stats.counter("stale_completions").increment()
                return None
            raise ProcessManagementError(
                f"PROC_DONE for unknown rank {rank} at kernel {self.kernel.kernel_id}"
            )
        self.stats.counter("completions").increment()
        done.succeed(msg.data)
        return None
        yield  # pragma: no cover - generator parity

    # -- resilience ----------------------------------------------------------
    def fail_pending_for(self, dead: int, now: float) -> int:
        """Complete (as :class:`TaskLost`) every pending invocation that was
        running on a kernel just declared dead."""
        lost = 0
        for rank in sorted(self._pending_target):
            if self._pending_target[rank] != dead:
                continue
            done = self._pending.pop(rank, None)
            self._pending_target.pop(rank, None)
            if done is not None and not done.triggered:
                done.succeed(TaskLost(time=now, detail=f"kernel {dead} crashed"))
                lost += 1
        if lost:
            self.stats.counter("tasks_lost").increment(lost)
        return lost

    def forget(self, rank: int) -> None:
        """Drop any pending bookkeeping for a rank (rollback re-invocation)."""
        self._pending.pop(rank, None)
        self._pending_target.pop(rank, None)

    def clear_guests(self) -> None:
        """Forget all local guests and pendings (crash/rollback teardown).

        Callers must have killed the guest coroutines first — this only
        clears the registry."""
        self.local_processes.clear()
        self._pending.clear()
        self._pending_target.clear()
