"""Distributed synchronisation: locks and barriers over DSE messages.

Locks are homed by name hash across the kernels; barriers are coordinated
by kernel 0.  Contended lock requests and early barrier arrivals are held
as *deferred replies* — the response message goes out when the lock frees
or the last party arrives, which is what suspends the requesting process.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, TYPE_CHECKING

from ..errors import DSEError
from ..sim.core import Event
from ..sim.monitor import StatSet
from .messages import DSEMessage, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import DSEKernel

__all__ = ["SyncManager"]


class _LockState:
    __slots__ = ("held_by", "held_acc", "waiters")

    def __init__(self) -> None:
        self.held_by: int = -1  # kernel id, -1 = free
        self.held_acc: int = -1  # DSE process rank of the holder
        self.waiters: List[DSEMessage] = []


class _BarrierState:
    __slots__ = ("arrived", "generation")

    def __init__(self) -> None:
        self.arrived: List[DSEMessage] = []
        self.generation = 0


class SyncManager:
    """One kernel's synchronisation module (client + server sides)."""

    def __init__(self, kernel: "DSEKernel"):
        self.kernel = kernel
        self._locks: Dict[str, _LockState] = {}
        self._barriers: Dict[str, _BarrierState] = {}
        self.stats = StatSet(f"sync:k{kernel.kernel_id}")
        #: sanitizer detectors (None when the mode is off; cluster-global,
        #: so the home kernel's hooks and the client's hooks meet in one view)
        from ..sanitize import NULL_SANITIZER

        _san = getattr(kernel.cluster, "sanitizer", NULL_SANITIZER)
        self._san_race = _san.race
        self._san_dead = _san.deadlock
        #: resilience manager (None when disabled) — used by the barrier
        #: server to discount participants on declared-dead kernels
        self._res = getattr(kernel.cluster, "resilience", None)

    # -- placement -----------------------------------------------------------
    def lock_home(self, name: str) -> int:
        """Deterministic home kernel for a named lock."""
        return sum(name.encode()) % self.kernel.cluster_size

    # -- client side ----------------------------------------------------------
    def acquire(
        self, name: str, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, None]:
        acc = self.kernel.kernel_id if accessor is None else accessor
        msg = DSEMessage(
            msg_type=MsgType.LOCK_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=self.lock_home(name),
            name=name,
            trace=trace,
            accessor=acc,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        if rsp.status != "ok":
            raise DSEError(f"lock acquire {name!r} failed: {rsp.status}")
        if self._san_race is not None:
            # Grant received: join the release clock of the previous holder.
            self._san_race.on_acquire(acc, name)
        self.stats.counter("acquires").increment()

    def release(
        self, name: str, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, None]:
        acc = self.kernel.kernel_id if accessor is None else accessor
        if self._san_race is not None:
            # Publish at the program release point — before anyone else can
            # possibly be granted the lock.
            self._san_race.on_release(acc, name)
        msg = DSEMessage(
            msg_type=MsgType.UNLOCK_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=self.lock_home(name),
            name=name,
            trace=trace,
            accessor=acc,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        if rsp.status != "ok":
            raise DSEError(f"lock release {name!r} failed: {rsp.status}")
        self.stats.counter("releases").increment()

    def barrier(
        self, name: str, parties: int, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, None]:
        if parties <= 0:
            raise DSEError(f"barrier parties must be positive, got {parties}")
        acc = self.kernel.kernel_id if accessor is None else accessor
        if self._san_race is not None:
            self._san_race.on_barrier_arrive(acc, name, parties)
        msg = DSEMessage(
            msg_type=MsgType.BARRIER_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=0,
            name=name,
            nwords=0,
            addr=parties,  # parties rides in the addr field
            trace=trace,
            accessor=acc,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        if rsp.status != "ok":
            raise DSEError(f"barrier {name!r} failed: {rsp.status}")
        if self._san_race is not None:
            # Released: adopt the merged clock of every participant.
            self._san_race.on_barrier_done(acc, name)
        self.stats.counter("barriers").increment()

    # -- server side -----------------------------------------------------------
    @staticmethod
    def _acc_of(msg: DSEMessage) -> int:
        """Sanitizer identity of a request (rank; kernel id as fallback)."""
        return msg.src_kernel if msg.accessor is None else msg.accessor

    def handle_lock(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        state = self._locks.setdefault(msg.name, _LockState())
        if state.held_by == -1:
            state.held_by = msg.src_kernel
            state.held_acc = self._acc_of(msg)
            if self._san_dead is not None:
                self._san_dead.on_lock_granted(state.held_acc, msg.name)
            self.stats.counter("grants_immediate").increment()
            return msg.make_response()
        if state.held_by == msg.src_kernel:
            return msg.make_response(status="already-held")
        state.waiters.append(msg)
        if self._san_dead is not None:
            # The queue edge is exact here at the lock's home: the requester
            # now waits on the current holder.  Check for a cycle.
            self._san_dead.on_lock_wait(
                self._acc_of(msg), msg.name, self.kernel.sim.now
            )
        self.stats.counter("grants_deferred").increment()
        return None  # deferred: reply sent by handle_unlock
        yield  # pragma: no cover - generator parity

    def handle_unlock(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        state = self._locks.get(msg.name)
        if state is None or state.held_by == -1:
            return msg.make_response(status="not-held")
        if state.held_by != msg.src_kernel:
            return msg.make_response(status="not-owner")
        if state.waiters:
            nxt = state.waiters.pop(0)
            state.held_by = nxt.src_kernel
            state.held_acc = self._acc_of(nxt)
            if self._san_dead is not None:
                self._san_dead.on_lock_granted(state.held_acc, msg.name)
            # Wake the queued requester with its (long-deferred) grant.
            yield from self.kernel.exchange.reply(nxt.make_response())
        else:
            state.held_by = -1
            state.held_acc = -1
            if self._san_dead is not None:
                self._san_dead.on_lock_released(msg.name)
        return msg.make_response()

    def handle_barrier(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        parties = msg.addr
        state = self._barriers.setdefault(msg.name, _BarrierState())
        state.arrived.append(msg)
        if self._san_dead is not None:
            self._san_dead.on_barrier_arrive(
                self._acc_of(msg), msg.name, parties, self.kernel.sim.now
            )
        if self._res is not None and self._res.config.reconfigure_barriers:
            parties -= self._missing_dead(state, parties)
        if len(state.arrived) < parties:
            return None  # deferred: released by the last arrival
        # Last party: release everyone (the last requester's own response is
        # returned, the rest are sent explicitly).
        arrived, state.arrived = state.arrived, []
        state.generation += 1
        if self._san_dead is not None:
            self._san_dead.on_barrier_release(msg.name)
        self.stats.counter("barrier_releases").increment()
        for waiting in arrived[:-1]:
            yield from self.kernel.exchange.reply(waiting.make_response())
        return arrived[-1].make_response()

    # -- resilience ------------------------------------------------------------
    def _missing_dead(self, state: _BarrierState, parties: int) -> int:
        """Number of declared-dead kernels that have not arrived at a barrier.

        Approximates "dead participants": assumes at most one participant
        per kernel (true for the SPMD workloads the resilient runner
        supports — see docs/resilience.md for the limits)."""
        view = self._res.views[self.kernel.kernel_id]
        dead = view.dead_kernels()
        if not dead:
            return 0
        arrived_from = {m.src_kernel for m in state.arrived}
        return sum(1 for d in dead if d not in arrived_from)

    def reconfigure_barriers(self, trace: Any = None) -> Generator[Event, Any, int]:
        """Release barriers now satisfiable after deaths (barrier server).

        Called on kernel 0 when a kernel is declared dead and
        ``reconfigure_barriers`` is configured: each pending barrier's party
        count is discounted by dead kernels that never arrived; if everyone
        still alive is already there, the barrier releases."""
        released = 0
        for name in sorted(self._barriers):
            state = self._barriers[name]
            if not state.arrived:
                continue
            parties = state.arrived[0].addr - self._missing_dead(
                state, state.arrived[0].addr
            )
            if len(state.arrived) < parties or parties <= 0:
                continue
            arrived, state.arrived = state.arrived, []
            state.generation += 1
            released += 1
            self.stats.counter("barriers_reconfigured").increment()
            if self._san_dead is not None:
                self._san_dead.on_barrier_release(name)
            for waiting in arrived:
                yield from self.kernel.exchange.reply(waiting.make_response())
        return released

    def revoke_dead(self, dead: int) -> Generator[Event, Any, int]:
        """Lease expiry for a dead kernel's locks (this kernel as lock home).

        Locks held by guests of the dead kernel are granted to the next
        waiter (or freed); queued waiters from the dead kernel are purged."""
        revoked = 0
        for name in sorted(self._locks):
            state = self._locks[name]
            state.waiters = [w for w in state.waiters if w.src_kernel != dead]
            if state.held_by != dead:
                continue
            revoked += 1
            self.stats.counter("locks_revoked").increment()
            if state.waiters:
                nxt = state.waiters.pop(0)
                state.held_by = nxt.src_kernel
                state.held_acc = self._acc_of(nxt)
                if self._san_dead is not None:
                    self._san_dead.on_lock_granted(state.held_acc, name)
                yield from self.kernel.exchange.reply(nxt.make_response())
            else:
                state.held_by = -1
                state.held_acc = -1
                if self._san_dead is not None:
                    self._san_dead.on_lock_released(name)
        return revoked

    def reset(self) -> None:
        """Drop all lock and barrier state (crash teardown / rollback).

        Consistent because a rollback kills every guest cluster-wide before
        any restarts — nothing can still be counting on a deferred reply."""
        self._locks.clear()
        self._barriers.clear()

    # -- introspection ------------------------------------------------------
    def lock_queue_length(self, name: str) -> int:
        state = self._locks.get(name)
        return len(state.waiters) if state else 0
