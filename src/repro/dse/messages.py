"""DSE message formats.

The paper's parallel API library contains a "global memory access request
message create module" and a "response message analyze module"; this module
is both — it defines every message the DSE kernels exchange and the size
accounting the transport charges for them.

All payloads ride as Python objects; ``size_bytes`` is the *accounted* wire
size (header + 8 bytes per global-memory word + per-field extras), which is
what the protocol and link layers use for timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import count
from typing import Any, Optional, Tuple

__all__ = [
    "MsgType",
    "DSEMessage",
    "HEADER_BYTES",
    "WORD_BYTES",
    "is_request",
    "is_response",
    "channel_of",
]

#: fixed DSE message header: type, seq, src, dst, addr/len fields
HEADER_BYTES = 32
#: global memory word (one float64)
WORD_BYTES = 8

_seqs = count(1)


class MsgType(Enum):
    """Every message the DSE kernel understands."""

    # global memory management module
    GM_READ_REQ = "gm_read_req"
    GM_READ_RSP = "gm_read_rsp"
    GM_WRITE_REQ = "gm_write_req"
    GM_WRITE_RSP = "gm_write_rsp"
    GM_ALLOC_REQ = "gm_alloc_req"
    GM_ALLOC_RSP = "gm_alloc_rsp"
    #: write-combining batch: ``data`` is a tuple of ``(addr, words)`` runs,
    #: ``nwords`` their total word count (one wire message per home)
    GM_WBATCH_REQ = "gm_wbatch_req"
    GM_WBATCH_RSP = "gm_wbatch_rsp"
    # coherence (write-invalidate ablation)
    GM_FETCH_REQ = "gm_fetch_req"  # fetch block copy (shared)
    GM_FETCH_RSP = "gm_fetch_rsp"
    GM_OWN_REQ = "gm_own_req"  # fetch exclusive ownership
    GM_OWN_RSP = "gm_own_rsp"
    GM_INV_REQ = "gm_inv_req"  # invalidate a cached copy
    GM_INV_RSP = "gm_inv_rsp"
    GM_WB_REQ = "gm_wb_req"  # write a dirty block back to home
    GM_WB_RSP = "gm_wb_rsp"
    # synchronisation
    LOCK_REQ = "lock_req"
    LOCK_RSP = "lock_rsp"
    UNLOCK_REQ = "unlock_req"
    UNLOCK_RSP = "unlock_rsp"
    BARRIER_REQ = "barrier_req"
    BARRIER_RSP = "barrier_rsp"
    # parallel process management module
    PROC_START_REQ = "proc_start_req"
    PROC_START_RSP = "proc_start_rsp"
    PROC_DONE = "proc_done"  # one-way notification to the invoking kernel
    SHUTDOWN_REQ = "shutdown_req"
    SHUTDOWN_RSP = "shutdown_rsp"
    # SSI services
    SSI_INFO_REQ = "ssi_info_req"
    SSI_INFO_RSP = "ssi_info_rsp"
    KV_PUT_REQ = "kv_put_req"
    KV_PUT_RSP = "kv_put_rsp"
    KV_GET_REQ = "kv_get_req"
    KV_GET_RSP = "kv_get_rsp"
    KV_DEL_REQ = "kv_del_req"
    KV_DEL_RSP = "kv_del_rsp"
    KV_LIST_REQ = "kv_list_req"
    KV_LIST_RSP = "kv_list_rsp"
    # resilience (repro.resilience): heartbeats and membership events are
    # one-way notifications; rollback is a request/response pair
    RES_HEARTBEAT = "res_heartbeat"  # one-way liveness beacon to the monitor
    RES_JOIN = "res_join"  # one-way (re)join announcement to the monitor
    RES_DEAD = "res_dead"  # one-way death declaration broadcast by the monitor
    RES_ROLLBACK_REQ = "res_rollback_req"
    RES_ROLLBACK_RSP = "res_rollback_rsp"


# One-way notifications must be classified as requests explicitly (like
# PROC_DONE) so ``next_request`` picks them out of the kernel mailbox.
_REQUESTS = {t for t in MsgType if t.value.endswith("_req")} | {
    MsgType.PROC_DONE,
    MsgType.RES_HEARTBEAT,
    MsgType.RES_JOIN,
    MsgType.RES_DEAD,
}
_RESPONSES = {t for t in MsgType if t.value.endswith("_rsp")}

#: request type -> its response type
RESPONSE_OF = {
    t: MsgType(t.value[:-4] + "_rsp") for t in MsgType if t.value.endswith("_req")
}


def is_request(t: MsgType) -> bool:
    return t in _REQUESTS


def is_response(t: MsgType) -> bool:
    return t in _RESPONSES


#: message types carried on the *unreliable* channel of a dual-channel
#: transport (see docs/networking.md): bulk global-memory data movement —
#: idempotent request/response pairs the exchange layer repairs itself with
#: an application-level retry — and best-effort liveness beacons.  Everything
#: else (locks, barriers, invalidations, allocation, process management) is
#: ordering- or exactly-once-critical and rides the reliable channel.
_DATA_CLASS = frozenset(
    {
        MsgType.GM_READ_REQ,
        MsgType.GM_READ_RSP,
        MsgType.GM_WRITE_REQ,
        MsgType.GM_WRITE_RSP,
        MsgType.GM_WBATCH_REQ,
        MsgType.GM_WBATCH_RSP,
        MsgType.GM_FETCH_REQ,
        MsgType.GM_FETCH_RSP,
        MsgType.GM_WB_REQ,
        MsgType.GM_WB_RSP,
        MsgType.RES_HEARTBEAT,
    }
)


def channel_of(t: MsgType) -> str:
    """Which dual-channel lane carries a message type.

    ``"unreliable"`` for idempotent bulk data and best-effort beacons,
    ``"reliable"`` for control traffic.  Only consulted when the cluster
    runs the ``dual`` transport; single-channel transports carry every
    class the same way.
    """
    return "unreliable" if t in _DATA_CLASS else "reliable"


#: message types whose word payload is charged on the wire: write/fetch
#: requests and read responses (frozenset: size_bytes is per-hop hot)
_WORD_CARRIERS = frozenset(
    {
        MsgType.GM_WRITE_REQ,
        MsgType.GM_WBATCH_REQ,
        MsgType.GM_READ_RSP,
        MsgType.GM_FETCH_RSP,
        MsgType.GM_OWN_RSP,
        MsgType.GM_WB_REQ,
    }
)


@dataclass(slots=True)
class DSEMessage:
    """One kernel-to-kernel message."""

    msg_type: MsgType
    src_kernel: int
    dst_kernel: int
    #: word address and word count for GM ops; (name,) for sync ops; etc.
    addr: int = 0
    nwords: int = 0
    name: str = ""
    data: Any = None  # numpy array of words, job payload, return value, ...
    status: str = "ok"
    seq: int = field(default_factory=lambda: next(_seqs))
    #: extra accounted bytes beyond header+data (e.g. pickled job payloads)
    extra_bytes: int = 0
    #: observability context (repro.obs.TraceContext) — rides in the header,
    #: not accounted in size_bytes (ids fit the existing seq/src/dst fields)
    trace: Any = field(default=None, repr=False, compare=False)
    #: requesting DSE process rank (sanitizer identity; see repro.sanitize) —
    #: rides in the header like ``trace``, not accounted in size_bytes
    accessor: Any = field(default=None, repr=False, compare=False)

    @property
    def is_request(self) -> bool:
        return is_request(self.msg_type)

    @property
    def is_response(self) -> bool:
        return is_response(self.msg_type)

    @property
    def size_bytes(self) -> int:
        data_words = self.nwords if self.msg_type in _WORD_CARRIERS else 0
        return HEADER_BYTES + data_words * WORD_BYTES + self.extra_bytes + len(self.name)

    def _carries_words(self) -> bool:
        """Word payload rides on write/fetch requests and read responses."""
        return self.msg_type in _WORD_CARRIERS

    def make_response(
        self,
        data: Any = None,
        nwords: Optional[int] = None,
        status: str = "ok",
        extra_bytes: int = 0,
    ) -> "DSEMessage":
        """Build the matching response (same seq, reversed direction)."""
        if not self.is_request or self.msg_type not in RESPONSE_OF:
            raise ValueError(f"cannot respond to {self.msg_type}")
        return DSEMessage(
            msg_type=RESPONSE_OF[self.msg_type],
            src_kernel=self.dst_kernel,
            dst_kernel=self.src_kernel,
            addr=self.addr,
            nwords=self.nwords if nwords is None else nwords,
            name=self.name,
            data=data,
            status=status,
            seq=self.seq,
            extra_bytes=extra_bytes,
            # Responses inherit the request's trace context so deferred
            # replies (queued locks, barriers) stay on the requester's tree.
            trace=self.trace,
            accessor=self.accessor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DSE {self.msg_type.value} #{self.seq} k{self.src_kernel}->k{self.dst_kernel}"
            f" addr={self.addr} n={self.nwords}>"
        )
