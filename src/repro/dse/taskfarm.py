"""Task farming: parallel map over the cluster (library utility).

The four paper applications hand-roll their distribution; this module
provides the packaged version a DSE user reaches for first — ``farm``
scatters independent task invocations across the kernels round-robin and
collects the results in order, ``farm_dynamic`` adds bounded in-flight
scheduling so a slow task does not hold up dispatch.

Tasks are plain generator functions ``task(api, item)`` running as DSE
processes on their target kernel — they may use global memory, locks, and
``api.compute`` like any other DSE process (but not SPMD barriers over
``api.size``; they have private rank ids).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..errors import DSEError
from ..sim.core import Event
from .api import ParallelAPI
from .procman import RemoteProcHandle

__all__ = ["farm", "farm_dynamic", "FARM_RANK_BASE"]

#: farmed tasks get private rank ids above any SPMD rank
FARM_RANK_BASE = 2_000_000

_farm_ids = count(1)


def _fresh_rank() -> int:
    return FARM_RANK_BASE + next(_farm_ids)


def _target_of(api: ParallelAPI, index: int, targets: Optional[Sequence[int]]) -> int:
    if targets:
        return targets[index % len(targets)]
    return index % api.size


def farm(
    api: ParallelAPI,
    task: Callable[..., Generator],
    items: Sequence[Any],
    targets: Optional[Sequence[int]] = None,
) -> Generator[Event, Any, List[Any]]:
    """Run ``task(api', item)`` for every item; returns results in order.

    All tasks are dispatched up front (round-robin over ``targets`` or all
    kernels) and run concurrently; the caller blocks until every result is
    back.
    """
    handles: List[RemoteProcHandle] = []
    for i, item in enumerate(items):
        target = _target_of(api, i, targets)
        if not (0 <= target < api.size):
            raise DSEError(f"farm target kernel {target} out of range")
        handle = yield from api.kernel.procman.invoke(
            target, task, _fresh_rank(), (item,)
        )
        handles.append(handle)
    results: List[Any] = []
    for handle in handles:
        value = yield from api.kernel.procman.wait(handle)
        results.append(value)
    return results


def farm_dynamic(
    api: ParallelAPI,
    task: Callable[..., Generator],
    items: Sequence[Any],
    max_in_flight: Optional[int] = None,
    targets: Optional[Sequence[int]] = None,
) -> Generator[Event, Any, List[Any]]:
    """Like :func:`farm` but with at most ``max_in_flight`` unfinished
    tasks (default: two per kernel) — the bounded work-pool pattern."""
    limit = max_in_flight if max_in_flight is not None else 2 * api.size
    if limit < 1:
        raise DSEError(f"max_in_flight must be >= 1, got {limit}")
    results: List[Any] = [None] * len(items)
    in_flight: List[tuple] = []  # (index, handle)
    next_item = 0
    while next_item < len(items) or in_flight:
        while next_item < len(items) and len(in_flight) < limit:
            target = _target_of(api, next_item, targets)
            handle = yield from api.kernel.procman.invoke(
                target, task, _fresh_rank(), (items[next_item],)
            )
            in_flight.append((next_item, handle))
            next_item += 1
        # Retire the oldest in-flight task (FIFO keeps ordering simple and
        # still bounds the window; completions themselves are concurrent).
        index, handle = in_flight.pop(0)
        results[index] = yield from api.kernel.procman.wait(handle)
    return results
