"""Task farming: parallel map over the cluster (library utility).

The four paper applications hand-roll their distribution; this module
provides the packaged version a DSE user reaches for first — ``farm``
scatters independent task invocations across the kernels round-robin and
collects the results in order, ``farm_dynamic`` adds bounded in-flight
scheduling so a slow task does not hold up dispatch.

Tasks are plain generator functions ``task(api, item)`` running as DSE
processes on their target kernel — they may use global memory, locks, and
``api.compute`` like any other DSE process (but not SPMD barriers over
``api.size``; they have private rank ids).

With the resilience subsystem enabled (``ClusterConfig(resilience=...)``)
``farm_dynamic`` becomes crash-tolerant: tasks are dispatched only to
kernels the local membership view considers usable, and a task lost to a
crash (its completion arrives as :class:`repro.dse.procman.TaskLost`) is
retried on a live kernel with deterministic backoff, up to
``max_task_retries`` attempts.  The :class:`FarmResult` it returns is a
plain list of results that additionally reports per-task attempt counts
and the total simulated compute thrown away to crashes.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..errors import DSEError, KernelUnavailableError, ResilienceError
from ..sim.core import Event
from .api import ParallelAPI
from .procman import RemoteProcHandle, TaskLost

__all__ = ["farm", "farm_dynamic", "farm_stream", "FarmStream", "FarmResult", "FARM_RANK_BASE"]

#: farmed tasks get private rank ids above any SPMD rank
FARM_RANK_BASE = 2_000_000

_farm_ids = count(1)


def _fresh_rank() -> int:
    return FARM_RANK_BASE + next(_farm_ids)


class FarmResult(list):
    """Results of a ``farm_dynamic`` run, in item order.

    Behaves exactly like the plain list older callers expect, plus
    bookkeeping the resilience experiments report:

    * ``attempts`` — per-item dispatch counts (all 1 without crashes);
    * ``retries`` — total re-dispatches (``sum(attempts) - len(items)``);
    * ``wasted_seconds`` — simulated time between dispatching an attempt
      and learning it was lost, summed over all lost attempts.
    """

    def __init__(self, values: Sequence[Any], attempts: Sequence[int], wasted_seconds: float):
        super().__init__(values)
        self.attempts = list(attempts)
        self.retries = sum(self.attempts) - len(self.attempts)
        self.wasted_seconds = wasted_seconds


def _target_of(api: ParallelAPI, index: int, targets: Optional[Sequence[int]]) -> int:
    if targets:
        return targets[index % len(targets)]
    return index % api.size


def _live_target_of(
    api: ParallelAPI, index: int, targets: Optional[Sequence[int]]
) -> int:
    """Round-robin target selection restricted to usable kernels."""
    view = api.kernel._res.views[api.kernel.kernel_id]
    pool = [t for t in (targets or range(api.size)) if view.usable(t)]
    if not pool:
        raise ResilienceError("no usable kernels left to farm tasks to")
    return pool[index % len(pool)]


def farm(
    api: ParallelAPI,
    task: Callable[..., Generator],
    items: Sequence[Any],
    targets: Optional[Sequence[int]] = None,
) -> Generator[Event, Any, List[Any]]:
    """Run ``task(api', item)`` for every item; returns results in order.

    All tasks are dispatched up front (round-robin over ``targets`` or all
    kernels) and run concurrently; the caller blocks until every result is
    back.
    """
    handles: List[RemoteProcHandle] = []
    for i, item in enumerate(items):
        target = _target_of(api, i, targets)
        if not (0 <= target < api.size):
            raise DSEError(f"farm target kernel {target} out of range")
        handle = yield from api.kernel.procman.invoke(
            target, task, _fresh_rank(), (item,)
        )
        handles.append(handle)
    results: List[Any] = []
    for handle in handles:
        value = yield from api.kernel.procman.wait(handle)
        results.append(value)
    return results


class FarmStream:
    """Open-loop task dispatch: send now, collect later.

    ``farm``/``farm_dynamic`` are *closed-loop* — the caller decides the
    whole item list up front and blocks until it drains.  A traffic
    generator cannot do that: requests arrive on their own clock and
    must be dispatched the moment they arrive, regardless of how many
    are still in flight.  A ``FarmStream`` holds the open handles:

    * ``yield from stream.dispatch(item, target)`` invokes the task and
      returns immediately after the send (blocking only for the invoke
      RPC, never for the task itself);
    * ``yield from stream.drain()`` waits for everything still open and
      returns results in dispatch order.

    Used by :mod:`repro.traffic.cluster_backend` to pace Poisson request
    arrivals onto real DSE kernels.
    """

    def __init__(
        self,
        api: ParallelAPI,
        task: Callable[..., Generator],
        targets: Optional[Sequence[int]] = None,
    ):
        self.api = api
        self.task = task
        self.targets = targets
        self._handles: List[RemoteProcHandle] = []
        self.dispatched = 0

    def dispatch(self, item: Any, target: Optional[int] = None) -> Generator:
        """Invoke ``task(api', item)`` on ``target`` (or round-robin)."""
        if target is None:
            target = _target_of(self.api, self.dispatched, self.targets)
        if not (0 <= target < self.api.size):
            raise DSEError(f"farm target kernel {target} out of range")
        handle = yield from self.api.kernel.procman.invoke(
            target, self.task, _fresh_rank(), (item,)
        )
        self._handles.append(handle)
        self.dispatched += 1
        return handle

    @property
    def outstanding(self) -> int:
        return len(self._handles)

    def drain(self) -> Generator[Event, Any, List[Any]]:
        """Wait for every open handle; results come back in dispatch order."""
        results: List[Any] = []
        for handle in self._handles:
            value = yield from self.api.kernel.procman.wait(handle)
            results.append(value)
        self._handles = []
        return results


def farm_stream(
    api: ParallelAPI,
    task: Callable[..., Generator],
    targets: Optional[Sequence[int]] = None,
) -> FarmStream:
    """Create an open-loop :class:`FarmStream` (see its docs)."""
    return FarmStream(api, task, targets)


def farm_dynamic(
    api: ParallelAPI,
    task: Callable[..., Generator],
    items: Sequence[Any],
    max_in_flight: Optional[int] = None,
    targets: Optional[Sequence[int]] = None,
) -> Generator[Event, Any, FarmResult]:
    """Like :func:`farm` but with at most ``max_in_flight`` unfinished
    tasks (default: two per kernel) — the bounded work-pool pattern.

    With resilience enabled, lost tasks are retried on live kernels (see
    the module docs); the returned :class:`FarmResult` reports attempts,
    retries, and wasted simulated compute."""
    limit = max_in_flight if max_in_flight is not None else 2 * api.size
    if limit < 1:
        raise DSEError(f"max_in_flight must be >= 1, got {limit}")
    res = api.kernel._res
    results: List[Any] = [None] * len(items)
    attempts: List[int] = [0] * len(items)
    wasted = 0.0
    in_flight: List[tuple] = []  # (index, handle, dispatched_at)
    retry_queue: List[int] = []  # item indexes awaiting re-dispatch
    next_item = 0
    while next_item < len(items) or in_flight or retry_queue:
        while len(in_flight) < limit and (retry_queue or next_item < len(items)):
            if retry_queue:
                index = retry_queue.pop(0)
            else:
                index = next_item
                next_item += 1
            attempt = attempts[index]
            if res is not None and attempt > 0:
                # Deterministic backoff: linear in the attempt number.
                yield from api.sleep(res.config.retry_backoff * attempt)
                # Rotate the target by the attempt number so a retry lands
                # on a different kernel than the one that just crashed.
                target = _live_target_of(api, index + attempt, targets)
            elif res is not None:
                target = _live_target_of(api, index, targets)
            else:
                target = _target_of(api, index, targets)
            attempts[index] += 1
            try:
                handle = yield from api.kernel.procman.invoke(
                    target, task, _fresh_rank(), (items[index],)
                )
            except KernelUnavailableError:
                # The target died between the view check and the send.
                if attempts[index] > res.config.max_task_retries:
                    raise ResilienceError(
                        f"task {index} lost after {attempts[index]} attempts"
                    ) from None
                retry_queue.append(index)
                continue
            in_flight.append((index, handle, api.now))
        # Retire the oldest in-flight task (FIFO keeps ordering simple and
        # still bounds the window; completions themselves are concurrent).
        index, handle, dispatched_at = in_flight.pop(0)
        value = yield from api.kernel.procman.wait(handle)
        if res is not None and isinstance(value, TaskLost):
            wasted += max(0.0, value.time - dispatched_at)
            if attempts[index] > res.config.max_task_retries:
                raise ResilienceError(
                    f"task {index} lost after {attempts[index]} attempts"
                )
            retry_queue.append(index)
            continue
        results[index] = value
    return FarmResult(results, attempts, wasted)
