"""The DSE kernel (parallel processing engine).

Per the paper's re-organisation (its Figures 2 and 3), the kernel is not a
separate UNIX process but a *parallel processing library* linked into the
application: here, one :class:`DSEKernel` owns one
:class:`repro.osmodel.UnixProcess` inside which run (a) the kernel's
message service loop and (b) every DSE process (parallel application
coroutine) started on this node.  All of them share the machine's CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

from ..errors import DSEError, KernelUnavailableError
from ..osmodel.machine import Machine
from ..sim.core import Event, Process
from ..sim.monitor import StatSet
from .exchange import MessageExchange
from .gmem import GlobalMemoryManager
from .messages import DSEMessage, MsgType
from .procman import ProcessManager, TaskLost
from .sync import SyncManager

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["DSEKernel"]


class DSEKernel:
    """One node's DSE kernel, linked (as a library) with its DSE processes."""

    def __init__(self, kernel_id: int, machine: Machine, cluster: "Cluster"):
        self.kernel_id = kernel_id
        self.machine = machine
        self.cluster = cluster
        self.sim = machine.sim
        self._shutdown = False
        self.stats = StatSet(f"kernel:{kernel_id}")
        #: extension services: message type -> handler (see register_service)
        self.services: Dict[MsgType, Callable[[DSEMessage], Generator]] = {}
        #: resilience manager (None when disabled) and liveness state
        self._res = getattr(cluster, "resilience", None)
        #: replay recorder (None when disabled) — cached so the checkpoint
        #: hook's disabled path is one attribute load + identity test
        self._replay = getattr(cluster, "replay", None)
        self.alive = True
        #: bumped on every reboot; lets the monitor tell a fast restart
        #: from a still-running incarnation
        self.incarnation = 0
        #: live request-handler coroutines, tracked only when resilience is
        #: on so a crash can tear them down with the kernel
        self._handlers: set = set()

        # The one UNIX process holding kernel + DSE processes (paper Fig. 2).
        self.unix_process = machine.spawn(self._body, name=f"dse-k{kernel_id}")
        #: observability recorder + this kernel's span lane (pid = machine,
        #: tid = the kernel's UNIX process)
        self.obs = cluster.obs
        self.obs_pid = machine.station_id
        self.obs_tid = self.unix_process.pid
        self.exchange = MessageExchange(self)
        self.gmem: GlobalMemoryManager = cluster.make_gmem(self)
        self.sync = SyncManager(self)
        self.procman = ProcessManager(self)

    # -- identity ----------------------------------------------------------
    @property
    def cluster_size(self) -> int:
        return self.cluster.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DSEKernel {self.kernel_id} on {self.machine.hostname}>"

    # -- service loop --------------------------------------------------------
    def _body(self, proc) -> Generator[Event, Any, None]:
        """UNIX-process body: run the message service loop until shutdown."""
        while not self._shutdown:
            msg = yield from self.exchange.next_request()
            self.stats.counter("requests_served").increment()
            if msg.msg_type is MsgType.SHUTDOWN_REQ:
                self._shutdown = True
                yield from self.exchange.reply(msg.make_response())
                break
            # Handle each request in its own coroutine so a long or blocking
            # handler (deferred lock, nested coherence RPC) never stalls the
            # service loop — the no-head-of-line-blocking property the paper
            # gets from asynchronous I/O interruption.
            handler = self.sim.process(
                self._handle(msg), name=f"k{self.kernel_id}.h{msg.seq}"
            )
            if self._res is not None:
                self._track_handler(handler)

    def _track_handler(self, handler: Process) -> None:
        """Remember a live handler coroutine so a crash can kill it.

        The completion callback re-raises handler failures: a Process with
        callbacks would otherwise have its exception swallowed by the event
        loop's unhandled-failure rule."""
        self._handlers.add(handler)

        def done(_ev: Event) -> None:
            self._handlers.discard(handler)
            if not handler._ok:
                raise handler._value

        handler.callbacks.append(done)

    def _handle(self, msg: DSEMessage) -> Generator[Event, Any, None]:
        span = None
        if self.obs.enabled and msg.trace is not None:
            span = self.obs.begin(
                self.sim.now,
                f"serve:{msg.msg_type.value}",
                "dse",
                self.obs_pid,
                self.obs_tid,
                msg.trace,
            )
        response = yield from self.dispatch(msg)
        if response is not None:
            yield from self.exchange.reply(response)
        if span is not None:
            self.obs.end(span, self.sim.now)

    def dispatch(self, msg: DSEMessage) -> Generator[Event, Any, Optional[DSEMessage]]:
        """Route a request to the owning module; returns the response or
        ``None`` when the reply is deferred (lock queues, barriers)."""
        t = msg.msg_type
        if t is MsgType.GM_READ_REQ:
            return (yield from self.gmem.handle_read(msg))
        if t is MsgType.GM_WRITE_REQ:
            return (yield from self.gmem.handle_write(msg))
        if t is MsgType.GM_WBATCH_REQ:
            return (yield from self.gmem.handle_write_batch(msg))
        if t is MsgType.GM_ALLOC_REQ:
            return (yield from self.gmem.handle_alloc(msg))
        if t in (
            MsgType.GM_FETCH_REQ,
            MsgType.GM_OWN_REQ,
            MsgType.GM_INV_REQ,
            MsgType.GM_WB_REQ,
        ):
            handler = getattr(self.gmem, "handle_coherence", None)
            if handler is None:
                raise DSEError(
                    f"{t} requires the caching coherence policy "
                    f"(configured: {self.gmem.policy_name})"
                )
            return (yield from handler(msg))
        if t is MsgType.LOCK_REQ:
            return (yield from self.sync.handle_lock(msg))
        if t is MsgType.UNLOCK_REQ:
            return (yield from self.sync.handle_unlock(msg))
        if t is MsgType.BARRIER_REQ:
            return (yield from self.sync.handle_barrier(msg))
        if t is MsgType.PROC_START_REQ:
            return (yield from self.procman.handle_start(msg))
        if t is MsgType.PROC_DONE:
            return (yield from self.procman.handle_done(msg))
        if t is MsgType.SSI_INFO_REQ:
            return self.cluster.ssi_info_response(self, msg)
        service = self.services.get(t)
        if service is not None:
            return (yield from service(msg))
        raise DSEError(f"kernel {self.kernel_id} cannot dispatch {t}")

    def register_service(
        self, msg_type: MsgType, handler: Callable[[DSEMessage], Generator]
    ) -> None:
        """Install a handler for an extension message type (SSI services).

        The handler is a generator taking the request and returning the
        response message (or ``None`` for deferred replies).
        """
        if msg_type in self.services:
            raise DSEError(f"service for {msg_type} already registered")
        self.services[msg_type] = handler

    # -- DSE processes ---------------------------------------------------------
    def start_dse_process(
        self, entry: Callable, rank: int, args: tuple, invoker: int
    ) -> Process:
        """Start a DSE process (application coroutine) on this kernel."""
        from .api import ParallelAPI  # local import: api imports kernel types

        api = ParallelAPI(self, rank)
        race = self.cluster.sanitizer.race
        res = self._res

        def run() -> Generator[Event, Any, Any]:
            if race is not None:
                race.on_child_start(rank)
            if res is None:
                value = yield from entry(api, *args)
                # Completion is a synchronisation point: push out any combined
                # writes before the invoker learns this process is done.
                yield from self.gmem.flush()
            else:
                try:
                    value = yield from entry(api, *args)
                    yield from self.gmem.flush()
                except KernelUnavailableError as exc:
                    # A kernel this guest depended on died.  Report the task
                    # as lost (not failed) so the invoker can retry or roll
                    # back; the flush is skipped — it may target the corpse.
                    value = TaskLost(time=self.sim.now, detail=str(exc))
            if race is not None:
                # Publish the child's final clock before the invoker can
                # observe completion.
                race.on_child_done(rank)
            yield from self.procman.notify_done(rank, invoker, value)
            return value

        self.stats.counter("dse_processes").increment()
        return self.sim.process(run(), name=f"dse-proc:r{rank}")

    # -- resilience ------------------------------------------------------------
    def reboot(self) -> None:
        """Bring a crashed kernel back up with a fresh incarnation.

        Models a node restart: a new UNIX process runs the service loop, the
        DSE port is re-bound, and all kernel-local state (global-memory
        slice, lock/barrier tables, guest registry) starts empty — recovery
        of *contents* is the checkpoint layer's job."""
        if self.alive:
            raise DSEError(f"kernel {self.kernel_id} is already running")
        self.incarnation += 1
        self._shutdown = False
        self._handlers = set()
        self.unix_process = self.machine.spawn(
            self._body, name=f"dse-k{self.kernel_id}.r{self.incarnation}"
        )
        self.obs_tid = self.unix_process.pid
        self.exchange.rebind()
        self.gmem.lose_memory()
        self.sync.reset()
        self.procman.clear_guests()
        self.alive = True
        self.stats.counter("reboots").increment()

    # -- shutdown --------------------------------------------------------------
    def request_shutdown_of(self, target: int) -> Generator[Event, Any, None]:
        """Stop ``target``'s service loop (used by the runtime at teardown)."""
        msg = DSEMessage(
            msg_type=MsgType.SHUTDOWN_REQ,
            src_kernel=self.kernel_id,
            dst_kernel=target,
        )
        if target == self.kernel_id:
            # Deliver through our own socket so the service loop sees it.
            self.machine.transport.loopback(
                self.exchange.socket.port, msg, msg.size_bytes,
                src_port=self.exchange.socket.port,
            )
            yield from self.exchange._await_response(msg.seq)
        else:
            yield from self.exchange.request(msg)
