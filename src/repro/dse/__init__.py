"""The DSE runtime: the paper's primary contribution.

Layout mirrors the paper's Figure 3:

* :mod:`~repro.dse.kernel` — the DSE kernel as a parallel processing library
* :mod:`~repro.dse.procman` — parallel process management module
* :mod:`~repro.dse.gmem` — global memory management module (home-based DSM)
* :mod:`~repro.dse.coherence` — write-invalidate caching DSM (ablation)
* :mod:`~repro.dse.exchange` — message exchange mechanism
* :mod:`~repro.dse.messages` — message create/analyze formats
* :mod:`~repro.dse.sync` — distributed locks and barriers
* :mod:`~repro.dse.api` — the Parallel API library applications link against
* :mod:`~repro.dse.cluster` / :mod:`~repro.dse.config` — cluster (and
  virtual-cluster) construction
* :mod:`~repro.dse.runtime` — SPMD / master-worker runners
"""

from .api import ParallelAPI
from .cluster import Cluster
from .config import ClusterConfig, DEFAULT_MACHINES
from .exchange import DSE_BASE_PORT, MessageExchange
from .gmem import GlobalMemoryManager
from .kernel import DSEKernel
from .messages import DSEMessage, HEADER_BYTES, MsgType, WORD_BYTES
from .procman import ProcessManager, RemoteProcHandle, TaskLost
from .runtime import RunResult, run_master, run_parallel
from .sync import SyncManager
from .collectives import allreduce, broadcast, gather, reduce, scatter
from .taskfarm import FARM_RANK_BASE, FarmResult, farm, farm_dynamic

__all__ = [
    "ParallelAPI",
    "Cluster",
    "ClusterConfig",
    "DEFAULT_MACHINES",
    "DSE_BASE_PORT",
    "MessageExchange",
    "GlobalMemoryManager",
    "DSEKernel",
    "DSEMessage",
    "HEADER_BYTES",
    "MsgType",
    "WORD_BYTES",
    "ProcessManager",
    "RemoteProcHandle",
    "TaskLost",
    "RunResult",
    "run_master",
    "run_parallel",
    "SyncManager",
    "FARM_RANK_BASE",
    "FarmResult",
    "farm",
    "farm_dynamic",
    "allreduce",
    "broadcast",
    "gather",
    "reduce",
    "scatter",
]
