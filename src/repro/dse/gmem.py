"""Global memory management module (the DSM core of DSE).

The paper's system model (Figure 1) gives each Processor Element a slice of
the Global Memory; the union of slices is the distributed shared memory the
parallel API exposes.  This module implements the baseline **home-based**
policy used by DSE: every word has a fixed home kernel (contiguous slices),
reads and writes to non-home words become request/response message pairs to
the home, and accesses to home-resident words are plain library-speed local
operations.

Addresses are in **words** (one word = one float64 = 8 bytes); a
``block_words`` granularity exists for the caching ablation
(:mod:`repro.dse.coherence`) and for allocator alignment.

With ``ClusterConfig(gmem_batching=True)`` (the large-cluster scaling
layer) the manager additionally batches global-memory traffic:

* **write combining** — remote writes are buffered per home, contiguous
  and overlapping runs are merged (latest write wins), and each home's
  buffer goes out as one ``GM_WBATCH_REQ`` wire message when flushed.
  Flushes happen at synchronisation points (lock release, barrier, DSE
  process completion), before any read that overlaps a buffered run, and
  when a home's buffer exceeds :data:`WC_FLUSH_WORDS`.
* **read combining** — concurrent remote reads of the same ``(addr,
  nwords)`` range share a single in-flight request; late joiners wait on
  the leader's marker event instead of sending their own message.

Batching never changes the values a data-race-free program observes — it
changes *when* writes hit the wire, and therefore the simulated clock.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import GlobalMemoryError
from ..hardware.cpu import Work
from ..sim.core import Event
from ..sim.monitor import StatSet
from .messages import DSEMessage, MsgType

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import DSEKernel

__all__ = ["GlobalMemoryManager", "WC_FLUSH_WORDS"]

#: fixed library cost of one global-memory operation (argument checking,
#: address translation) regardless of locality
_GM_CALL_WORK = Work(iops=80)

#: write-combining buffer cap per home (words); a buffer past this size is
#: flushed immediately so batching bounds memory and staleness
WC_FLUSH_WORDS = 16384


class GlobalMemoryManager:
    """One kernel's view of the cluster-wide global memory (home policy)."""

    policy_name = "home"

    def __init__(self, kernel: "DSEKernel", total_words: int, block_words: int):
        if total_words <= 0 or block_words <= 0:
            raise GlobalMemoryError("total_words and block_words must be positive")
        self.kernel = kernel
        self.total_words = total_words
        self.block_words = block_words
        n = kernel.cluster_size
        # Contiguous slice per kernel, rounded up to a whole number of
        # blocks so that no block straddles two homes (required by the
        # caching coherence policy, harmless for the home policy).
        raw_slice = -(-total_words // n)  # ceil division
        self.slice_words = -(-raw_slice // block_words) * block_words
        self.my_lo = min(kernel.kernel_id * self.slice_words, total_words)
        self.my_hi = min(self.my_lo + self.slice_words, total_words)
        #: authoritative storage for this kernel's home slice
        self.storage = np.zeros(self.my_hi - self.my_lo, dtype=np.float64)
        #: bump allocator (kernel 0 is the allocation authority)
        self._alloc_next = 0
        self.stats = StatSet(f"gmem:k{kernel.kernel_id}")
        # Hot-path counters resolved once: every read/write bumps these, and
        # StatSet.counter is a lazy dict lookup per call.
        self._c_local_reads = self.stats.counter("local_reads")
        self._c_words_read = self.stats.counter("words_read")
        self._c_local_writes = self.stats.counter("local_writes")
        self._c_remote_writes = self.stats.counter("remote_writes")
        self._c_words_written = self.stats.counter("words_written")
        #: message batching (large-cluster scaling layer; see module docs)
        self.batching = bool(
            getattr(getattr(kernel.cluster, "config", None), "gmem_batching", False)
        )
        #: write-combining buffers: home kernel -> [(start, words), ...]
        self._wc: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        #: read-combining table: (start, count) -> in-flight marker event
        self._read_inflight: Dict[Tuple[int, int], Event] = {}
        #: race detector (None unless ``ClusterConfig(sanitize=...)`` asked
        #: for it) — the disabled path is one attribute load + identity test
        from ..sanitize import NULL_SANITIZER

        self._san_race = getattr(kernel.cluster, "sanitizer", NULL_SANITIZER).race
        #: resilience manager (None when disabled); when it — or the replay
        #: recorder — is on, the high-water mark of the local slice is
        #: tracked so checkpoints copy only the used prefix.  The combined
        #: flag is resolved once: the write hot path tests one bool.
        self._res = getattr(kernel.cluster, "resilience", None)
        self._track_hw = (
            self._res is not None
            or getattr(kernel.cluster, "replay", None) is not None
        )
        self._hw = 0

    # -- address arithmetic -------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home kernel of word ``addr`` (contiguous slice distribution)."""
        self._check_addr(addr)
        return min(addr // self.slice_words, self.kernel.cluster_size - 1)

    def _check_addr(self, addr: int) -> None:
        if not (0 <= addr < self.total_words):
            raise GlobalMemoryError(
                f"address {addr} outside global memory [0, {self.total_words})"
            )

    def _check_range(self, addr: int, nwords: int) -> None:
        if nwords <= 0:
            raise GlobalMemoryError(f"word count must be positive, got {nwords}")
        self._check_addr(addr)
        if addr + nwords > self.total_words:
            raise GlobalMemoryError(
                f"range [{addr}, {addr + nwords}) overruns global memory "
                f"(total {self.total_words} words)"
            )

    def home_runs(self, addr: int, nwords: int) -> List[Tuple[int, int, int]]:
        """Split ``[addr, addr+nwords)`` into per-home runs.

        Returns ``(home_kernel, start_addr, count)`` triples, coalescing all
        contiguous words with the same home into one run (one message).
        """
        self._check_range(addr, nwords)
        runs: List[Tuple[int, int, int]] = []
        pos, end = addr, addr + nwords
        while pos < end:
            home = min(pos // self.slice_words, self.kernel.cluster_size - 1)
            home_hi = (
                self.total_words
                if home == self.kernel.cluster_size - 1
                else (home + 1) * self.slice_words
            )
            take = min(end, home_hi) - pos
            runs.append((home, pos, take))
            pos += take
        return runs

    # -- local slice access --------------------------------------------------
    def _local_read(self, addr: int, nwords: int) -> np.ndarray:
        lo = addr - self.my_lo
        return self.storage[lo : lo + nwords].copy()

    def _local_view(self, addr: int, nwords: int) -> np.ndarray:
        """Zero-copy view of the home slice — for consumers that copy.

        Safe **only** when the caller immediately copies the data out
        (e.g. assignment into a gather buffer): a view kept across simulated
        time would alias the live home storage and change observed values.
        Anything placed in a response message must use :meth:`_local_read`.
        """
        lo = addr - self.my_lo
        return self.storage[lo : lo + nwords]

    def _local_write(self, addr: int, values: np.ndarray) -> None:
        lo = addr - self.my_lo
        hi = lo + len(values)
        self.storage[lo:hi] = values
        if self._track_hw and hi > self._hw:
            self._hw = hi

    def _owns(self, addr: int, nwords: int) -> bool:
        return self.my_lo <= addr and addr + nwords <= self.my_hi

    # -- public API (used by the parallel API library) ------------------------
    def read(
        self, addr: int, nwords: int, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, np.ndarray]:
        """Read ``nwords`` words starting at ``addr``."""
        if self._san_race is not None:
            self._san_race.on_access(
                self.kernel.kernel_id if accessor is None else accessor,
                addr, nwords, False, self.kernel.sim.now,
            )
        yield from self.kernel.unix_process.compute(_GM_CALL_WORK)
        if self.batching and self._wc:
            yield from self._flush_overlapping(addr, nwords, trace=trace)
        if self.my_lo <= addr and addr + nwords <= self.my_hi and nwords > 0:
            # Entirely home-local: same events and stats as the general loop
            # below (one run), but a single copy with no gather buffer.
            self._c_local_reads.increment()
            yield from self.kernel.unix_process.compute(Work(mems=nwords))
            out = self._local_view(addr, nwords).copy()
            self._c_words_read.increment(nwords)
            return out
        out = np.empty(nwords, dtype=np.float64)
        offset = 0
        for home, start, count in self.home_runs(addr, nwords):
            if home == self.kernel.kernel_id:
                self._c_local_reads.increment()
                yield from self.kernel.unix_process.compute(Work(mems=count))
                # Assignment into the gather buffer copies; skip the
                # intermediate _local_read copy.
                out[offset : offset + count] = self._local_view(start, count)
            elif self.batching:
                chunk = yield from self._remote_read_combined(home, start, count, trace)
                out[offset : offset + count] = chunk
            else:
                out[offset : offset + count] = yield from self._remote_read(
                    home, start, count, trace
                )
            offset += count
        self._c_words_read.increment(nwords)
        return out

    def _remote_read(
        self, home: int, start: int, count: int, trace: Any = None
    ) -> Generator[Event, Any, np.ndarray]:
        """One request/response round trip for a single-home run."""
        self.stats.counter("remote_reads").increment()
        msg = DSEMessage(
            msg_type=MsgType.GM_READ_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=home,
            addr=start,
            nwords=count,
            trace=trace,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        if rsp.status != "ok":
            raise GlobalMemoryError(f"remote read failed: {rsp.status}")
        return np.asarray(rsp.data, dtype=np.float64)

    def _remote_read_combined(
        self, home: int, start: int, count: int, trace: Any = None
    ) -> Generator[Event, Any, np.ndarray]:
        """Remote read through the read-combining table.

        The first reader of a ``(start, count)`` range becomes the leader
        and sends the wire message; readers that arrive while it is in
        flight wait on the leader's marker and share the response.
        """
        key = (start, count)
        pending = self._read_inflight.get(key)
        if pending is not None:
            self.stats.counter("combined_reads").increment()
            status, data = yield pending
            if status != "ok":
                raise GlobalMemoryError(f"remote read failed: {status}")
            return data
        marker = self.kernel.sim.event(name=f"gmrd:{start}+{count}")
        self._read_inflight[key] = marker
        status, data = "error", None
        try:
            data = yield from self._remote_read(home, start, count, trace)
            status = "ok"
            return data
        finally:
            # pop (not del): a crash teardown may clear the table while the
            # leader is in flight, and this finally also runs on kill
            self._read_inflight.pop(key, None)
            if not marker.triggered:
                marker.succeed((status, data))

    def write(
        self, addr: int, values: Any, trace: Any = None, accessor: Any = None
    ) -> Generator[Event, Any, None]:
        """Write ``values`` (array-like of float64) starting at ``addr``."""
        data = np.asarray(values, dtype=np.float64).ravel()
        nwords = len(data)
        if self._san_race is not None:
            self._san_race.on_access(
                self.kernel.kernel_id if accessor is None else accessor,
                addr, nwords, True, self.kernel.sim.now,
            )
        yield from self.kernel.unix_process.compute(_GM_CALL_WORK)
        offset = 0
        for home, start, count in self.home_runs(addr, nwords):
            chunk = data[offset : offset + count]
            if home == self.kernel.kernel_id:
                self._c_local_writes.increment()
                yield from self.kernel.unix_process.compute(Work(mems=count))
                self._local_write(start, chunk)
            elif self.batching:
                self._c_remote_writes.increment()
                self.stats.counter("combined_writes").increment()
                # Buffer locally (one memory copy); the wire message goes
                # out at the next flush point.
                yield from self.kernel.unix_process.compute(Work(mems=count))
                self._buffer_write(home, start, chunk)
                if sum(len(d) for _, d in self._wc[home]) > WC_FLUSH_WORDS:
                    yield from self.flush(homes=(home,), trace=trace)
            else:
                self._c_remote_writes.increment()
                msg = DSEMessage(
                    msg_type=MsgType.GM_WRITE_REQ,
                    src_kernel=self.kernel.kernel_id,
                    dst_kernel=home,
                    addr=start,
                    nwords=count,
                    data=chunk,
                    trace=trace,
                )
                rsp = yield from self.kernel.exchange.request(msg)
                if rsp.status != "ok":
                    raise GlobalMemoryError(f"remote write failed: {rsp.status}")
            offset += count
        self._c_words_written.increment(nwords)

    # -- write combining (batching mode) --------------------------------------
    def _buffer_write(self, home: int, start: int, chunk: np.ndarray) -> None:
        """Fold one write run into ``home``'s combining buffer.

        Runs are kept non-overlapping; a new run absorbs every buffered run
        it overlaps or touches, and its own data is laid down last so the
        latest write wins.
        """
        runs = self._wc.setdefault(home, [])
        lo, hi = start, start + len(chunk)
        merged: List[Tuple[int, np.ndarray]] = []
        kept: List[Tuple[int, np.ndarray]] = []
        for run in runs:
            rlo, rhi = run[0], run[0] + len(run[1])
            (merged if (rlo <= hi and lo <= rhi) else kept).append(run)
        if not merged:
            runs.append((start, chunk.copy()))
            return
        new_lo = min(lo, min(r[0] for r in merged))
        new_hi = max(hi, max(r[0] + len(r[1]) for r in merged))
        buf = np.zeros(new_hi - new_lo, dtype=np.float64)
        for rlo, rdata in merged:
            buf[rlo - new_lo : rlo - new_lo + len(rdata)] = rdata
        buf[lo - new_lo : hi - new_lo] = chunk
        kept.append((new_lo, buf))
        self._wc[home] = kept

    def _flush_overlapping(
        self, addr: int, nwords: int, trace: Any = None
    ) -> Generator[Event, Any, None]:
        """Flush every home whose buffer overlaps ``[addr, addr+nwords)`` so
        a read always observes this kernel's own buffered writes."""
        lo, hi = addr, addr + nwords
        homes = [
            home
            for home, runs in self._wc.items()
            if any(rlo < hi and lo < rlo + len(rdata) for rlo, rdata in runs)
        ]
        if homes:
            yield from self.flush(homes=homes, trace=trace)

    def flush(
        self, homes: Optional[Any] = None, trace: Any = None
    ) -> Generator[Event, Any, None]:
        """Send buffered write runs, one ``GM_WBATCH_REQ`` per home.

        Called at synchronisation points (lock release, barrier, DSE
        process completion) and before overlapping reads.  A no-op unless
        batching is enabled and something is buffered.
        """
        if not self._wc:
            return
        targets = sorted(self._wc) if homes is None else sorted(set(homes) & set(self._wc))
        for home in targets:
            runs = self._wc.pop(home)
            runs.sort(key=lambda r: r[0])
            total = int(sum(len(d) for _, d in runs))
            self.stats.counter("batch_flushes").increment()
            self.stats.counter("batched_runs").increment(len(runs))
            msg = DSEMessage(
                msg_type=MsgType.GM_WBATCH_REQ,
                src_kernel=self.kernel.kernel_id,
                dst_kernel=home,
                addr=runs[0][0],
                nwords=total,
                data=tuple(runs),
                # per-run descriptor (addr + length) beyond the word payload
                extra_bytes=8 * len(runs),
                trace=trace,
            )
            rsp = yield from self.kernel.exchange.request(msg)
            if rsp.status != "ok":
                raise GlobalMemoryError(f"batched write failed: {rsp.status}")

    def alloc(self, nwords: int, trace: Any = None) -> Generator[Event, Any, int]:
        """Allocate ``nwords`` words; kernel 0 is the allocation authority."""
        if nwords <= 0:
            raise GlobalMemoryError(f"allocation size must be positive, got {nwords}")
        msg = DSEMessage(
            msg_type=MsgType.GM_ALLOC_REQ,
            src_kernel=self.kernel.kernel_id,
            dst_kernel=0,
            nwords=nwords,
            trace=trace,
        )
        rsp = yield from self.kernel.exchange.request(msg)
        if rsp.status != "ok":
            raise GlobalMemoryError(f"allocation of {nwords} words failed: {rsp.status}")
        return rsp.addr

    # -- resilience ----------------------------------------------------------
    def snapshot_slice(self) -> np.ndarray:
        """Copy of the used prefix of this kernel's home slice (checkpoint)."""
        return self.storage[: self._hw].copy()

    def restore_slice(self, data: Any) -> None:
        """Overwrite the home slice from a checkpoint snapshot (rollback)."""
        snap = np.asarray(data, dtype=np.float64)
        self.storage[:] = 0.0
        self.storage[: len(snap)] = snap
        self._hw = len(snap)
        self._wc.clear()
        self._read_inflight.clear()

    def lose_memory(self) -> None:
        """Model the memory loss of a crash: slice zeroed, buffers gone.

        Guest coroutines must be killed *before* this is called — killing a
        combined-read leader runs its ``finally``, which touches
        ``_read_inflight``."""
        self.storage[:] = 0.0
        self._hw = 0
        self._wc.clear()
        self._read_inflight.clear()

    def abort_inflight(self) -> None:
        """Drop combining state on a surviving kernel during rollback."""
        self._wc.clear()
        self._read_inflight.clear()

    # -- message handlers (home side) ---------------------------------------
    def handle_read(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        if not self._owns(msg.addr, msg.nwords):
            return msg.make_response(status="not-home")
        yield from self.kernel.unix_process.compute(Work(mems=msg.nwords))
        self.stats.counter("served_reads").increment()
        return msg.make_response(data=self._local_read(msg.addr, msg.nwords))

    def handle_write(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        if not self._owns(msg.addr, msg.nwords):
            return msg.make_response(status="not-home", nwords=0)
        yield from self.kernel.unix_process.compute(Work(mems=msg.nwords))
        self._local_write(msg.addr, np.asarray(msg.data, dtype=np.float64))
        self.stats.counter("served_writes").increment()
        return msg.make_response(nwords=0)

    def handle_write_batch(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        """Apply a ``GM_WBATCH_REQ``: ``msg.data`` is a tuple of
        ``(start, words)`` runs, all homed here."""
        runs = tuple(msg.data or ())
        total = int(sum(len(d) for _, d in runs))
        for start, words in runs:
            if not self._owns(start, len(words)):
                return msg.make_response(status="not-home", nwords=0)
        # One handler dispatch amortised over all runs: per-word copy cost
        # plus a small per-run unpacking overhead.
        yield from self.kernel.unix_process.compute(Work(mems=total, iops=40 * len(runs)))
        for start, words in runs:
            self._local_write(start, np.asarray(words, dtype=np.float64))
        self.stats.counter("served_batches").increment()
        self.stats.counter("served_writes").increment(len(runs))
        return msg.make_response(nwords=0)

    def handle_alloc(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        if self.kernel.kernel_id != 0:
            return msg.make_response(status="not-allocator", nwords=0)
        # Align allocations to block boundaries so blocks are never shared
        # between unrelated allocations (matters for the caching ablation).
        aligned = -(-self._alloc_next // self.block_words) * self.block_words
        if aligned + msg.nwords > self.total_words:
            return msg.make_response(status="out-of-memory", nwords=0)
        self._alloc_next = aligned + msg.nwords
        self.stats.counter("allocations").increment()
        rsp = msg.make_response(nwords=0)
        rsp.addr = aligned
        return rsp
        yield  # pragma: no cover - keeps this a generator for dispatch parity
