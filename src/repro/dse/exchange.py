"""Message exchange mechanism (paper Figure 3, right-hand column).

Routes DSE messages between kernels:

* **own node** — a message whose destination is the *same kernel* never
  touches the OS: the paper's re-organisation put the DSE kernel and DSE
  process into one UNIX process precisely so this path is a library call.
  We charge only a small library-call cost and dispatch inline.
* **co-located kernel** — a kernel on the same machine (virtual cluster)
  is reached through the loopback path: full protocol processing, no wire.
* **remote kernel** — full path: syscalls, protocol processing, Ethernet.

``request`` implements the RPC pattern (send request, await the response
with a matching sequence number); ``notify`` is one-way; ``reply`` is used
by handlers, possibly long after the request arrived (deferred replies are
how distributed locks queue waiters).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple, TYPE_CHECKING

from ..errors import DSEError, KernelUnavailableError
from ..hardware.cpu import Work
from ..osmodel.sockets import Socket
from ..sim.core import Event
from ..sim.monitor import StatSet
from .messages import DSEMessage, MsgType, channel_of

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import DSEKernel

__all__ = ["MessageExchange", "DSE_BASE_PORT", "LOCAL_CALL_WORK"]

#: kernel *k* listens on DSE_BASE_PORT + k on its machine
DSE_BASE_PORT = 6200

#: cost of the library-call path for own-node messages (the win of the
#: paper's re-organisation: no syscall, no protocol processing)
LOCAL_CALL_WORK = Work(iops=200, mems=50)

#: application-level retry of RPCs on the unreliable dual-transport channel:
#: wait this long (simulated) for the response before re-sending the request
APP_RETRY_TIMEOUT = 0.025
#: re-sends before the RPC is declared failed (data-class requests are
#: idempotent, so a duplicate dispatch on the server is harmless)
APP_RETRY_LIMIT = 12


class MessageExchange:
    """One kernel's message exchange module."""

    def __init__(self, kernel: "DSEKernel"):
        self.kernel = kernel
        self.sim = kernel.sim
        #: kernel id -> (station id, port)
        self.routes: Dict[int, Tuple[int, int]] = {}
        self.socket: Socket = kernel.machine.open_socket(
            kernel.unix_process, DSE_BASE_PORT + kernel.kernel_id
        )
        self.stats = StatSet(f"exchange:k{kernel.kernel_id}")
        self.obs = kernel.obs
        #: resilience manager (None when disabled — every hook below is one
        #: attribute load + identity test on the default path)
        self._res = getattr(kernel.cluster, "resilience", None)
        #: local membership view (only consulted when resilience is on)
        self._view = None if self._res is None else self._res.views[kernel.kernel_id]
        #: piggyback hook the monitor installs on its own kernel; called
        #: with the source kernel id of every inbound request
        self._on_message: Optional[Callable[[int], None]] = None
        #: in-flight remote RPC waits: seq -> (dst kernel, abort event)
        self._waiting: Dict[int, Tuple[int, Event]] = {}
        #: last simulated time anything was sent towards the monitor
        #: (kernel 0) — lets the heartbeat agent piggyback on real traffic
        self.last_sent_to_monitor = 0.0
        #: dual-channel transport: classify every message and retry
        #: unreliable-channel RPCs at the application level
        self._dual = getattr(kernel.machine.transport, "dual_channel", False)

    def add_route(self, kernel_id: int, station: int, port: int) -> None:
        self.routes[kernel_id] = (station, port)

    def route_of(self, kernel_id: int) -> Tuple[int, int]:
        try:
            return self.routes[kernel_id]
        except KeyError:
            raise DSEError(
                f"kernel {self.kernel.kernel_id} has no route to kernel {kernel_id}"
            ) from None

    # -- outgoing ----------------------------------------------------------
    def request(self, msg: DSEMessage) -> Generator[Event, Any, DSEMessage]:
        """Send a request and await its matching response."""
        if not msg.is_request:
            raise DSEError(f"request() called with non-request {msg.msg_type}")
        if (
            self._view is not None
            and msg.dst_kernel != self.kernel.kernel_id
            and not self._view.usable(msg.dst_kernel)
        ):
            self.stats.counter("requests_refused_dead").increment()
            raise KernelUnavailableError(
                f"kernel {self.kernel.kernel_id} refuses {msg.msg_type.value} "
                f"to crashed kernel {msg.dst_kernel}"
            )
        span = None
        if self.obs.enabled and msg.trace is not None:
            local = msg.dst_kernel == self.kernel.kernel_id
            span = self.obs.begin(
                self.sim.now,
                f"{'call' if local else 'rpc'}:{msg.msg_type.value}",
                "dse",
                self.kernel.obs_pid,
                self.kernel.obs_tid,
                msg.trace,
            )
            # Downstream layers (and the serving kernel) parent to the RPC.
            msg.trace = span.ctx
        if msg.dst_kernel == self.kernel.kernel_id:
            # Own node: the parallel processing library handles it inline.
            self.stats.counter("local_calls").increment()
            yield from self.kernel.unix_process.compute(LOCAL_CALL_WORK)
            response = yield from self.kernel.dispatch(msg)
            if response is None:
                # Deferred local reply (e.g. contended local lock): wait for
                # it to arrive on our own socket like any other response.
                response = yield from self._await_response(msg.seq)
            if span is not None:
                self.obs.end(span, self.sim.now)
            return response
        self.stats.counter("requests_sent").increment()
        if self._dual and channel_of(msg.msg_type) == "unreliable":
            # Data-class RPC on the raw channel: the transport gives no
            # delivery guarantee, so reliability lives here — resend the
            # (idempotent) request until its response arrives.
            response = yield from self._request_with_retry(msg)
            if span is not None:
                self.obs.end(span, self.sim.now)
            return response
        yield from self._transmit(msg)
        try:
            response = yield from self._await_response(msg.seq, dst=msg.dst_kernel)
        except KernelUnavailableError:
            if span is not None:
                self.obs.end(span, self.sim.now)
            raise
        if span is not None:
            self.obs.end(span, self.sim.now)
        return response

    def _request_with_retry(
        self, msg: DSEMessage
    ) -> Generator[Event, Any, DSEMessage]:
        """Transmit on the unreliable channel and await the response,
        re-sending on a timeout (at-least-once; requires idempotence).

        A duplicated request makes the server dispatch twice and answer
        twice; the spare response is left unclaimed in the mailbox, exactly
        like a duplicate datagram.  Exponential patience: attempt *n* waits
        ``n * APP_RETRY_TIMEOUT`` before the next resend."""
        seq = msg.seq
        match = (
            lambda p: isinstance(p.payload, DSEMessage)
            and p.payload.is_response
            and p.payload.seq == seq
        )
        for attempt in range(1, APP_RETRY_LIMIT + 2):
            yield from self._transmit(msg)
            # The abort must be a plain Event: a Timeout is born triggered
            # (value pre-set, dispatch via the queue), so recv's fast-path
            # ``abort.triggered`` check would bail out immediately.
            deadline = self.sim.event(
                name=f"k{self.kernel.kernel_id}.rpc-deadline:{seq}"
            )
            timer = self.sim.timeout(attempt * APP_RETRY_TIMEOUT)
            timer.callbacks.append(
                lambda _ev, d=deadline: None if d.triggered else d.succeed()
            )
            packet = yield from self.socket.recv(filter=match, abort=deadline)
            if packet is not None:
                if attempt > 1:
                    self.stats.counter("rpc_retries_recovered").increment()
                return packet.payload
            if attempt <= APP_RETRY_LIMIT:
                self.stats.counter("rpc_retries").increment()
        raise DSEError(
            f"kernel {self.kernel.kernel_id} gave up on "
            f"{msg.msg_type.value} #{seq} to kernel {msg.dst_kernel} after "
            f"{APP_RETRY_LIMIT} unreliable-channel retries"
        )

    def notify(self, msg: DSEMessage) -> Generator[Event, Any, None]:
        """Send a one-way message (no response expected)."""
        if msg.dst_kernel == self.kernel.kernel_id:
            self.stats.counter("local_calls").increment()
            yield from self.kernel.unix_process.compute(LOCAL_CALL_WORK)
            response = yield from self.kernel.dispatch(msg)
            if response is not None:
                raise DSEError(f"notify of {msg.msg_type} produced a response")
            return
        self.stats.counter("notifies_sent").increment()
        yield from self._transmit(msg)

    def reply(self, response: DSEMessage) -> Generator[Event, Any, None]:
        """Send a response built with :meth:`DSEMessage.make_response`."""
        if not response.is_response:
            raise DSEError(f"reply() called with non-response {response.msg_type}")
        self.stats.counter("replies_sent").increment()
        if response.dst_kernel == self.kernel.kernel_id:
            # Deferred reply to a local requester: deliver via loopback so the
            # waiting coroutine's socket filter picks it up.
            self.kernel.machine.transport.loopback(
                self.socket.port, response, response.size_bytes,
                src_port=self.socket.port, trace=response.trace,
            )
            return
        yield from self._transmit(response)

    def _transmit(self, msg: DSEMessage) -> Generator[Event, Any, None]:
        station, port = self.route_of(msg.dst_kernel)
        if self._res is not None and msg.dst_kernel == self._res.monitor_id:
            # Any traffic towards the monitor doubles as a heartbeat.
            self.last_sent_to_monitor = self.sim.now
        self.stats.counter("bytes_out").increment(msg.size_bytes)
        self.kernel.cluster.tracer.emit(
            self.sim.now,
            f"k{self.kernel.kernel_id}",
            "send",
            (msg.msg_type.value, msg.dst_kernel, msg.size_bytes),
        )
        channel = channel_of(msg.msg_type) if self._dual else None
        yield from self.socket.sendto(
            station, port, msg, msg.size_bytes, trace=msg.trace, channel=channel
        )

    def _await_response(
        self, seq: int, dst: Optional[int] = None
    ) -> Generator[Event, Any, DSEMessage]:
        match = (
            lambda p: isinstance(p.payload, DSEMessage)
            and p.payload.is_response
            and p.payload.seq == seq
        )
        if self._res is None or dst is None:
            packet = yield from self.socket.recv(filter=match)
            return packet.payload
        # Resilient wait: the RPC is registered so the death of ``dst`` can
        # abort it (a datagram to a crashed kernel never gets a response).
        abort = self.sim.event(name=f"k{self.kernel.kernel_id}.rpc-abort:{seq}")
        self._waiting[seq] = (dst, abort)
        try:
            packet = yield from self.socket.recv(filter=match, abort=abort)
        finally:
            self._waiting.pop(seq, None)
        if packet is None:
            self.stats.counter("rpcs_aborted").increment()
            raise KernelUnavailableError(
                f"kernel {dst} was declared dead while kernel "
                f"{self.kernel.kernel_id} awaited response #{seq}"
            )
        return packet.payload

    def abort_waiting_to(self, dead: int) -> int:
        """Abort every in-flight RPC wait aimed at a dead kernel."""
        aborted = 0
        for seq in sorted(self._waiting):
            dst, abort = self._waiting[seq]
            if dst == dead and not abort.triggered:
                abort.succeed()
                aborted += 1
        return aborted

    # -- incoming -----------------------------------------------------------
    def next_request(self) -> Generator[Event, Any, DSEMessage]:
        """Receive the next inbound *request* (service-loop side)."""
        packet = yield from self.socket.recv(
            filter=lambda p: isinstance(p.payload, DSEMessage) and p.payload.is_request
        )
        self.stats.counter("requests_received").increment()
        msg = packet.payload
        if self._on_message is not None:
            self._on_message(msg.src_kernel)
        self.kernel.cluster.tracer.emit(
            self.sim.now,
            f"k{self.kernel.kernel_id}",
            "recv",
            (msg.msg_type.value, msg.src_kernel, msg.size_bytes),
        )
        return msg

    def close(self) -> None:
        self.socket.close()

    def rebind(self) -> None:
        """Re-open the listening socket after a kernel reboot (resilience).

        The port is the same; only the owning UNIX process changed.  Inbound
        packets that arrived while the port was unbound were dropped by the
        transport (``packets_no_port``), exactly like datagrams to a dead
        host."""
        self.socket = self.kernel.machine.open_socket(
            self.kernel.unix_process, DSE_BASE_PORT + self.kernel.kernel_id
        )
