"""Parallel Application Programming Interface library (paper Figure 3).

A :class:`ParallelAPI` is what application code programs against — one
instance per DSE process.  Application bodies are generator functions::

    def worker(api):
        addr = yield from api.gm_alloc(1024)
        yield from api.gm_write(addr, values)
        yield from api.barrier("step")
        data = yield from api.gm_read(addr, 1024)
        return float(data.sum())

All methods that may suspend (touch memory, synchronise, compute) are
generators and must be driven with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

import numpy as np

from ..errors import DSEError
from ..hardware.cpu import Work
from ..sim.core import Event
from .messages import WORD_BYTES
from .procman import RemoteProcHandle

__all__ = ["ParallelAPI"]


class ParallelAPI:
    """The per-process handle onto DSE services."""

    def __init__(self, kernel, rank: int):
        self.kernel = kernel
        self.rank = rank
        #: cross-layer span recorder (root spans are minted here, at the API
        #: boundary, and the context travels inside every derived message)
        self.obs = kernel.obs
        #: race detector for fork-join happens-before edges (None when off)
        from ..sanitize import NULL_SANITIZER

        self._san_race = getattr(kernel.cluster, "sanitizer", NULL_SANITIZER).race

    def _root(self, name: str):
        """Open a root span for one API call (None when tracing is off)."""
        return self.obs.begin(
            self.kernel.sim.now, name, "api",
            self.kernel.obs_pid, self.kernel.obs_tid, None,
        )

    def _end(self, span) -> None:
        self.obs.end(span, self.kernel.sim.now)

    # -- identity ----------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of DSE kernels (processors) in the cluster."""
        return self.kernel.cluster_size

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.kernel.sim.now

    @property
    def hostname(self) -> str:
        return self.kernel.machine.hostname

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParallelAPI rank={self.rank}/{self.size} on k{self.kernel.kernel_id}>"

    # -- computation -----------------------------------------------------------
    def compute(self, work: Work) -> Generator[Event, Any, None]:
        """Charge abstract operation counts to this node's CPU."""
        yield from self.kernel.unix_process.compute(work)

    def compute_seconds(self, seconds: float) -> Generator[Event, Any, None]:
        yield from self.kernel.unix_process.compute_seconds(seconds)

    # -- global memory ------------------------------------------------------
    def gm_alloc(self, nwords: int) -> Generator[Event, Any, int]:
        """Allocate ``nwords`` words of global memory; returns the address."""
        if not self.obs.enabled:
            return (yield from self.kernel.gmem.alloc(nwords))
        span = self._root("api.gm_alloc")
        addr = yield from self.kernel.gmem.alloc(nwords, trace=span.ctx)
        self._end(span)
        return addr

    def gm_read(self, addr: int, nwords: int) -> Generator[Event, Any, np.ndarray]:
        """Read ``nwords`` float64 words from global memory."""
        if not self.obs.enabled:
            return (yield from self.kernel.gmem.read(addr, nwords, accessor=self.rank))
        span = self._root("api.gm_read")
        data = yield from self.kernel.gmem.read(
            addr, nwords, trace=span.ctx, accessor=self.rank
        )
        self._end(span)
        return data

    def gm_write(self, addr: int, values: Sequence[float]) -> Generator[Event, Any, None]:
        """Write float64 words into global memory."""
        if not self.obs.enabled:
            yield from self.kernel.gmem.write(addr, values, accessor=self.rank)
            return
        span = self._root("api.gm_write")
        yield from self.kernel.gmem.write(
            addr, values, trace=span.ctx, accessor=self.rank
        )
        self._end(span)

    def gm_read_scalar(self, addr: int) -> Generator[Event, Any, float]:
        data = yield from self.kernel.gmem.read(addr, 1, accessor=self.rank)
        return float(data[0])

    def gm_write_scalar(self, addr: int, value: float) -> Generator[Event, Any, None]:
        yield from self.kernel.gmem.write(addr, [value], accessor=self.rank)

    @staticmethod
    def words_for_bytes(nbytes: int) -> int:
        """Words needed to hold ``nbytes`` bytes."""
        return -(-nbytes // WORD_BYTES)

    def home_base(self, kernel_id: int) -> int:
        """First global address homed at ``kernel_id``.

        Applications use this to *place* data: writing a partition at
        ``home_base(r) + offset`` makes rank r's accesses local, exactly as
        the paper's Figure 1 distributes the Global Memory across PEs.
        """
        if not (0 <= kernel_id < self.size):
            raise DSEError(f"kernel id {kernel_id} out of range")
        return kernel_id * self.kernel.gmem.slice_words

    @property
    def slice_words(self) -> int:
        """Words of global memory homed at each kernel."""
        return self.kernel.gmem.slice_words

    # -- synchronisation ---------------------------------------------------
    def lock(self, name: str) -> Generator[Event, Any, None]:
        if not self.obs.enabled:
            yield from self.kernel.sync.acquire(name, accessor=self.rank)
            return
        span = self._root("api.lock")
        yield from self.kernel.sync.acquire(name, trace=span.ctx, accessor=self.rank)
        self._end(span)

    def unlock(self, name: str) -> Generator[Event, Any, None]:
        # Releasing a lock is a synchronisation point: combined writes must
        # reach their homes before another process can acquire the lock and
        # read them.
        if not self.obs.enabled:
            yield from self.kernel.gmem.flush()
            yield from self.kernel.sync.release(name, accessor=self.rank)
            return
        span = self._root("api.unlock")
        yield from self.kernel.gmem.flush(trace=span.ctx)
        yield from self.kernel.sync.release(name, trace=span.ctx, accessor=self.rank)
        self._end(span)

    def barrier(
        self, name: str, parties: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """Wait until ``parties`` processes (default: all ranks) arrive."""
        # A barrier is a synchronisation point: flush combined writes before
        # entering so they are visible to everyone on the other side.
        if not self.obs.enabled:
            yield from self.kernel.gmem.flush()
            yield from self.kernel.sync.barrier(
                name, parties or self.size, accessor=self.rank
            )
            return
        span = self._root("api.barrier")
        yield from self.kernel.gmem.flush(trace=span.ctx)
        yield from self.kernel.sync.barrier(
            name, parties or self.size, trace=span.ctx, accessor=self.rank
        )
        self._end(span)

    # -- parallel process management -------------------------------------------
    def spawn_workers(
        self,
        entry: Callable,
        ranks: Optional[Sequence[int]] = None,
        args_of: Optional[Callable[[int], tuple]] = None,
    ) -> Generator[Event, Any, List[RemoteProcHandle]]:
        """Invoke ``entry`` as a DSE process on each rank's kernel.

        By default spawns every rank except this one; rank *r* runs on
        kernel *r* (the cluster's placement may redirect — see SSI).
        """
        if ranks is None:
            ranks = [r for r in range(self.size) if r != self.rank]
        handles = []
        for rank in ranks:
            target = self.kernel.cluster.placement(rank)
            args = args_of(rank) if args_of else ()
            if self._san_race is not None:
                # Fork edge: everything the parent did so far happens-before
                # everything the child will do.
                self._san_race.on_spawn(self.rank, rank)
            handle = yield from self.kernel.procman.invoke(target, entry, rank, args)
            handles.append(handle)
        return handles

    def wait_workers(
        self, handles: List[RemoteProcHandle]
    ) -> Generator[Event, Any, Dict[int, Any]]:
        """Collect return values of spawned workers: {rank: value}."""
        results = yield from self.kernel.procman.wait_all(handles)
        if self._san_race is not None:
            # Join edge: everything a completed child did happens-before
            # everything the parent does from here on.
            for handle in handles:
                self._san_race.on_join(self.rank, handle.rank)
        return results

    # -- resilience ----------------------------------------------------------
    def checkpoint(self, state: Any = None) -> Generator[Event, Any, None]:
        """Take part in a coordinated checkpoint (resilience subsystem).

        All ranks must call this at the same program point — it is a barrier
        (twice: enter and commit), making the cut consistent.  ``state`` is
        this rank's private restart state (e.g. ``{"sweep": 3}``); it is
        saved to stable storage together with a snapshot of this kernel's
        home slice of global memory.  After a crash the resilient runner
        re-invokes every rank with the committed ``state`` and the restored
        global memory.  A no-op (no events, no messages) when both
        resilience and replay recording are disabled, so workloads can call
        it unconditionally.

        With replay recording on (``ClusterConfig(replay=...)``) the same
        call also feeds the record/replay debugger's checkpoint ring: when
        resilience is active the recorder piggybacks on its snapshots (no
        extra barriers); otherwise the recorder runs the two-phase barrier
        protocol itself (see :mod:`repro.replay`).
        """
        res = self.kernel._res
        if res is not None:
            # The recorder (if any) piggybacks inside res.checkpoint.
            yield from res.checkpoint(self, state)
            return
        rec = self.kernel._replay
        if rec is None:
            return
        yield from rec.checkpoint(self, state)

    # -- misc ----------------------------------------------------------------
    def sleep(self, seconds: float) -> Generator[Event, Any, None]:
        yield from self.kernel.unix_process.sleep(seconds)
