"""Cluster configuration.

Captures everything a run of the paper's experiments varies: which Table-1
platform, how many DSE kernels (processors), how many physical machines
(six, per the paper — more kernels than machines means kernels double up,
the *virtual cluster*), the network fabric, the transport, and the DSM
coherence policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..errors import ConfigurationError
from ..hardware.platform import PlatformSpec
from ..hardware.platforms import LINUX_PCAT
from ..network.topology import FabricConfig

__all__ = ["ClusterConfig", "DEFAULT_MACHINES"]

#: the paper's experiments used six physical machines per platform
DEFAULT_MACHINES = 6

_COHERENCE_POLICIES = ("home", "cache")
_TRANSPORTS = ("datagram", "reliable", "reliable-gbn", "sr", "dual")


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one simulated DSE cluster."""

    platform: PlatformSpec = LINUX_PCAT
    n_processors: int = 4  # number of DSE kernels
    n_machines: int = DEFAULT_MACHINES  # physical machines available
    #: optional heterogeneous cluster: machine *i* uses ``platforms[i]``
    #: (cycled if shorter than n_machines); overrides ``platform``.  The
    #: paper targets exactly this — one environment across mixed UNIX boxes.
    platforms: Optional[Tuple[PlatformSpec, ...]] = None
    fabric: FabricConfig = field(default_factory=FabricConfig)
    transport: str = "datagram"
    coherence: str = "home"
    total_gm_words: int = 1 << 22  # 32 MiB of global memory
    block_words: int = 128  # 1 KiB blocks
    #: global-memory message batching (the large-cluster scaling layer):
    #: remote writes are combined per home and flushed as one wire message
    #: at synchronisation points, concurrent identical remote reads share
    #: one fetch, and (under the caching policy) contiguous missing blocks
    #: are fetched with one multi-block message.  Data values are unchanged
    #: for data-race-free programs; the simulated clock differs because
    #: fewer, larger messages hit the wire (see docs/scaling.md).
    gmem_batching: bool = False
    seed: int = 1999
    #: record per-message trace events (see repro.experiments.timeline)
    trace: bool = False
    #: record causal spans across all layers (see repro.obs); adds no
    #: simulation events, so virtual-time results are unchanged
    obs_trace: bool = False
    #: sampling period (simulated seconds) for the metrics time-series;
    #: 0 disables the sampler entirely
    obs_metrics_interval: float = 0.0
    #: cap on retained spans (None = unbounded); drops are counted
    obs_span_limit: Optional[int] = None
    #: dynamic sanitizers (see repro.sanitize / docs/sanitizers.md):
    #: ``False`` off, ``True``/``"all"`` everything, or any combination of
    #: ``"race"`` (lockset + happens-before data-race detection) and
    #: ``"deadlock"`` (lock-cycle + barrier-fault detection) as a string
    #: ("race,deadlock") or tuple.  Sanitizers observe only — simulated
    #: time is bit-identical with them on or off.
    sanitize: Any = False
    #: resilience subsystem (see repro.resilience / docs/resilience.md):
    #: ``None`` off (the default path adds no events, no RNG draws, and is
    #: bit-identical in simulated time), or a
    #: :class:`repro.resilience.ResilienceConfig` to enable heartbeat
    #: failure detection, crash/partition campaigns, and checkpoint/restart
    #: recovery.  Requires the datagram transport and home coherence.
    resilience: Any = None
    #: record/replay debugger (see repro.replay / docs/debugging.md):
    #: ``None`` off (the hooks cost one cached ``is not None`` guard and
    #: simulated time is bit-identical), or a
    #: :class:`repro.replay.ReplayConfig` to record a bounded checkpoint
    #: ring + event-log tail that ``dse-experiments replay`` can seek
    #: into.  Requires the home coherence policy (snapshots copy home
    #: slices, like resilience checkpoints).
    replay: Any = None
    #: sharded parallel-in-time execution (see repro.shard /
    #: docs/sharding.md): 0 = the classic single event loop; N >= 1
    #: partitions the machines across N concurrently advancing loops under
    #: conservative (lookahead-windowed) synchronisation.  ``--shards N``
    #: produces byte-identical results for every N.  Requires the switched
    #: fabric (the shared bus has zero lookahead — every station preempts
    #: every other within one bit time) and is incompatible with the
    #: observation/sanitizer/resilience/replay layers, which assume one
    #: global event stream.
    shards: int = 0
    #: sharded execution backend: ``"inline"`` drives every shard in one OS
    #: process (the determinism reference, zero parallelism), ``"process"``
    #: runs one OS worker process per shard (the speedup path; identical
    #: simulated results by construction)
    shard_workers: str = "inline"
    #: explicit machine -> shard assignment (length ``machines_used``,
    #: values ``0..shards-1``); ``None`` lets the topology-aware
    #: partitioner choose contiguous balanced blocks
    shard_map: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ConfigurationError("need at least one processor")
        if self.n_machines < 1:
            raise ConfigurationError("need at least one machine")
        if self.transport not in _TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; expected {_TRANSPORTS}"
            )
        if self.coherence not in _COHERENCE_POLICIES:
            raise ConfigurationError(
                f"unknown coherence policy {self.coherence!r}; expected {_COHERENCE_POLICIES}"
            )
        if self.total_gm_words <= 0 or self.block_words <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if self.block_words > self.total_gm_words:
            raise ConfigurationError("block_words cannot exceed total_gm_words")
        if self.platforms is not None and len(self.platforms) == 0:
            raise ConfigurationError("platforms tuple cannot be empty")
        if self.obs_metrics_interval < 0:
            raise ConfigurationError("obs_metrics_interval cannot be negative")
        if self.obs_span_limit is not None and self.obs_span_limit < 0:
            raise ConfigurationError("obs_span_limit cannot be negative")
        if isinstance(self.sanitize, list):
            # Keep the frozen dataclass hashable for sweep helpers.
            object.__setattr__(self, "sanitize", tuple(self.sanitize))
        try:
            self.sanitize_modes
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        if self.resilience is not None:
            from ..resilience.config import ResilienceConfig

            if not isinstance(self.resilience, ResilienceConfig):
                raise ConfigurationError(
                    "resilience must be None or a ResilienceConfig, "
                    f"got {type(self.resilience).__name__}"
                )
            if self.transport != "datagram":
                # Reliable transports retransmit to dead kernels forever —
                # the resilience layer needs sends to crashed nodes to be
                # silently dropped (datagram semantics).
                raise ConfigurationError(
                    "resilience requires the datagram transport "
                    f"(configured: {self.transport!r})"
                )
            if self.coherence != "home":
                raise ConfigurationError(
                    "resilience requires the home coherence policy "
                    f"(configured: {self.coherence!r})"
                )
        if self.replay is not None:
            from ..replay.config import ReplayConfig

            if not isinstance(self.replay, ReplayConfig):
                raise ConfigurationError(
                    "replay must be None or a ReplayConfig, "
                    f"got {type(self.replay).__name__}"
                )
            if self.coherence != "home":
                raise ConfigurationError(
                    "replay recording requires the home coherence policy "
                    f"(configured: {self.coherence!r})"
                )
            self.replay.validate()
        if isinstance(self.shard_map, list):
            object.__setattr__(self, "shard_map", tuple(self.shard_map))
        if self.shards < 0:
            raise ConfigurationError("shards cannot be negative")
        if self.shard_workers not in ("inline", "process"):
            raise ConfigurationError(
                f"unknown shard_workers {self.shard_workers!r}; "
                "expected 'inline' or 'process'"
            )
        if self.shard_map is not None and not self.shards:
            raise ConfigurationError("shard_map requires shards >= 1")
        if self.shards:
            if self.shards > self.machines_used:
                raise ConfigurationError(
                    f"cannot split {self.machines_used} machine(s) into "
                    f"{self.shards} shards"
                )
            if self.fabric.kind != "switch":
                # The shared bus has zero lookahead: any station's send can
                # collide with any other within one bit time, so no shard
                # could ever run ahead.  The switched LAN's per-port model
                # gives one minimum-frame serialisation time of lookahead.
                raise ConfigurationError(
                    "sharded execution requires the switched fabric "
                    f"(configured: {self.fabric.kind!r})"
                )
            for feature, on in (
                ("trace", self.trace),
                ("obs_trace", self.obs_trace),
                ("obs_metrics_interval", self.obs_metrics_interval > 0),
                ("sanitize", bool(self.sanitize_modes)),
                ("resilience", self.resilience is not None),
                ("replay", self.replay is not None),
            ):
                if on:
                    raise ConfigurationError(
                        f"sharded execution is incompatible with {feature} "
                        "(these layers assume one global event stream)"
                    )
            if self.shard_map is not None:
                if len(self.shard_map) != self.machines_used:
                    raise ConfigurationError(
                        f"shard_map has {len(self.shard_map)} entries for "
                        f"{self.machines_used} machines"
                    )

    @property
    def sanitize_modes(self) -> frozenset:
        """The requested sanitizers as a frozenset of mode names."""
        from ..sanitize import normalize_modes

        return normalize_modes(self.sanitize)

    # -- placement -----------------------------------------------------------
    @property
    def machines_used(self) -> int:
        """Physical machines actually built for this processor count."""
        return min(self.n_processors, self.n_machines)

    def machine_of(self, kernel_id: int) -> int:
        """Round-robin kernel placement; beyond ``n_machines`` kernels start
        doubling up — the paper's virtual cluster construction."""
        if not (0 <= kernel_id < self.n_processors):
            raise ConfigurationError(f"kernel id {kernel_id} out of range")
        return kernel_id % self.machines_used

    def kernels_on(self, machine_id: int) -> List[int]:
        return [
            k for k in range(self.n_processors) if self.machine_of(k) == machine_id
        ]

    def max_colocation(self) -> int:
        """Largest number of kernels sharing one machine."""
        return max(len(self.kernels_on(m)) for m in range(self.machines_used))

    def platform_of_machine(self, machine_id: int) -> PlatformSpec:
        """The platform of one physical machine (heterogeneous-aware)."""
        if not (0 <= machine_id < self.machines_used):
            raise ConfigurationError(f"machine id {machine_id} out of range")
        if self.platforms is None:
            return self.platform
        return self.platforms[machine_id % len(self.platforms)]

    def with_processors(self, n: int) -> "ClusterConfig":
        """Copy with a different processor count (sweep helper)."""
        from dataclasses import replace

        return replace(self, n_processors=n)
