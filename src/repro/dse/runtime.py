"""High-level runners: SPMD and master/worker execution on a DSE cluster.

``run_parallel`` is the one-call entry point the applications and the
experiment harness use: build the cluster, run one DSE process per kernel
(SPMD), collect return values, tear the kernels down, and report elapsed
*simulated* time plus the explanatory statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..errors import DSEError
from ..sim.core import Event
from .api import ParallelAPI
from .cluster import Cluster
from .config import ClusterConfig

__all__ = ["RunResult", "run_parallel", "run_master"]


@dataclass
class RunResult:
    """Outcome of one parallel run."""

    elapsed: float  # simulated seconds, master start -> all workers done
    returns: Dict[int, Any]  # rank -> return value
    stats: Dict[str, float] = field(default_factory=dict)
    sim_events: int = 0
    config: Optional[ClusterConfig] = None
    #: the (finished) cluster, for post-mortem inspection/profiling
    cluster: Optional[Cluster] = None

    @property
    def master_return(self) -> Any:
        return self.returns.get(0)


def run_master(
    config: ClusterConfig,
    master: Callable[[ParallelAPI], Generator],
    args: tuple = (),
) -> RunResult:
    """Run ``master(api, *args)`` as the parallel application on kernel 0.

    The master is responsible for spawning workers itself (via
    ``api.spawn_workers``); its return value appears as rank 0's.
    """
    cluster = Cluster(config)
    outcome: Dict[str, Any] = {}

    def driver() -> Generator[Event, Any, None]:
        api = ParallelAPI(cluster.kernel(0), 0)
        start = api.now
        value = yield from master(api, *args)
        outcome["elapsed"] = api.now - start
        outcome["returns"] = {0: value}
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver(), name="dse-master")
    cluster.sim.run_all()
    # End-of-run sanitizer analyses (stuck barriers, stalled lock waiters)
    # run on success AND on drain — a hung run is exactly when they matter.
    sanitizer = cluster.sanitizer
    if sanitizer.enabled:
        sanitizer.finalize(cluster.sim.now)
    if "returns" not in outcome:
        detail = "master did not complete (deadlock or early drain)"
        if sanitizer.enabled and not sanitizer.report.clean:
            detail = f"{detail}\n{sanitizer.report.format()}"
        error = DSEError(detail)
        error.cluster = cluster  # post-mortem inspection (reports, stats)
        raise error
    return RunResult(
        elapsed=outcome["elapsed"],
        returns=outcome["returns"],
        stats=cluster.stats_snapshot(),
        sim_events=cluster.sim.events_processed,
        config=config,
        cluster=cluster,
    )


def run_parallel(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
    args_of: Optional[Callable[[int], tuple]] = None,
) -> RunResult:
    """SPMD execution: ``worker(api, *args)`` runs once on every kernel.

    ``args_of(rank)`` overrides ``args`` per rank when given.  Returns the
    per-rank return values and cluster statistics.
    """

    def master(api: ParallelAPI) -> Generator[Event, Any, Dict[int, Any]]:
        handles = yield from api.spawn_workers(
            worker, args_of=args_of if args_of else (lambda rank: args)
        )
        my_value = yield from worker(api, *(args_of(0) if args_of else args))
        results = yield from api.wait_workers(handles)
        results[0] = my_value
        return results

    result = run_master(config, master)
    results = result.returns[0]
    result.returns = results
    return result
