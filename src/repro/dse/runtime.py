"""High-level runners: SPMD and master/worker execution on a DSE cluster.

``run_parallel`` is the one-call entry point the applications and the
experiment harness use: build the cluster, run one DSE process per kernel
(SPMD), collect return values, tear the kernels down, and report elapsed
*simulated* time plus the explanatory statistics.

``launch_master`` / ``launch_parallel`` expose the same runs *undrained*:
a :class:`LaunchedRun` holds the wired cluster with the driver process
scheduled but the event loop not yet run, so a caller can advance
simulated time incrementally (``run_to``, ``step``) and inspect the live
cluster between advances.  This is the seek engine of the time-travel
debugger (:mod:`repro.replay`); ``run_master``/``run_parallel`` are the
drain-to-completion wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..errors import DSEError
from ..sim.core import Event
from .api import ParallelAPI
from .cluster import Cluster
from .config import ClusterConfig

__all__ = [
    "RunResult",
    "LaunchedRun",
    "launch_master",
    "launch_parallel",
    "run_parallel",
    "run_master",
]


@dataclass
class RunResult:
    """Outcome of one parallel run."""

    elapsed: float  # simulated seconds, master start -> all workers done
    returns: Dict[int, Any]  # rank -> return value
    stats: Dict[str, float] = field(default_factory=dict)
    sim_events: int = 0
    config: Optional[ClusterConfig] = None
    #: the (finished) cluster, for post-mortem inspection/profiling
    cluster: Optional[Cluster] = None

    @property
    def master_return(self) -> Any:
        return self.returns.get(0)


class LaunchedRun:
    """A master-driven parallel run that has not consumed its event queue.

    The cluster is fully built and the driver process is scheduled; nothing
    has executed yet (``now`` equals the cluster's start time).  Drive it
    with :meth:`run_to` / :meth:`step`, or drain it with :meth:`finish`,
    which returns the same :class:`RunResult` the one-shot runners do.
    """

    def __init__(
        self,
        config: ClusterConfig,
        master: Callable[..., Generator],
        args: tuple = (),
        start_time: float = 0.0,
        unwrap_spmd: bool = False,
    ):
        self.config = config
        if config.shards:
            from ..shard.cluster import ShardedCluster

            self.cluster = ShardedCluster(config, start_time=start_time)
        else:
            self.cluster = Cluster(config, start_time=start_time)
        self._unwrap_spmd = unwrap_spmd
        self._outcome: Dict[str, Any] = {}
        rec = self.cluster.replay
        outcome = self._outcome
        cluster = self.cluster

        def driver() -> Generator[Event, Any, None]:
            api = ParallelAPI(cluster.kernel(0), 0)
            start = api.now
            if rec is not None:
                rec.note(
                    "run.start",
                    {"master": getattr(master, "__name__", "master")},
                )
            value = yield from master(api, *args)
            outcome["elapsed"] = api.now - start
            outcome["returns"] = {0: value}
            if rec is not None:
                rec.note("run.done", {"elapsed": outcome["elapsed"]})
            yield from cluster.shutdown_from(0)

        # Kernel 0's event loop (== ``cluster.sim`` unless sharded: the
        # contiguous partition always places machine 0 on shard 0, but the
        # hook keeps the invariant explicit).
        cluster.master_sim().process(driver(), name="dse-master")

    # -- state ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.cluster.sim.now

    @property
    def done(self) -> bool:
        """Has the master completed (return values are available)?"""
        return "returns" in self._outcome

    # -- incremental driving -------------------------------------------------
    def run_to(self, until: float) -> float:
        """Advance simulated time to ``until`` (inclusive); returns ``now``.

        Events stamped exactly ``until`` are processed, so the state seen
        afterwards is "after everything at or before ``until``"."""
        if self.cluster.is_sharded:
            raise DSEError(
                "incremental driving (run_to/step) is not available under "
                "sharded execution — only whole-run finish()"
            )
        self.cluster.sim.run(until=until)
        return self.cluster.sim.now

    def step(self, n: int = 1) -> int:
        """Process up to ``n`` events; returns how many actually ran."""
        if self.cluster.is_sharded:
            raise DSEError(
                "incremental driving (run_to/step) is not available under "
                "sharded execution — only whole-run finish()"
            )
        sim = self.cluster.sim
        done = 0
        for _ in range(n):
            if sim.peek() == float("inf"):
                break
            sim.step()
            done += 1
        return done

    # -- completion ----------------------------------------------------------
    def finish(self) -> RunResult:
        """Drain the remaining events and build the run's result."""
        cluster = self.cluster
        cluster.run_all()
        # End-of-run sanitizer analyses (stuck barriers, stalled lock
        # waiters) run on success AND on drain — a hung run is exactly when
        # they matter.
        sanitizer = cluster.sanitizer
        if sanitizer.enabled:
            sanitizer.finalize(cluster.sim.now)
        if "returns" not in self._outcome:
            detail = "master did not complete (deadlock or early drain)"
            if sanitizer.enabled and not sanitizer.report.clean:
                detail = f"{detail}\n{sanitizer.report.format()}"
            error = DSEError(detail)
            error.cluster = cluster  # post-mortem inspection (reports, stats)
            raise error
        returns = self._outcome["returns"]
        if self._unwrap_spmd:
            returns = returns[0]
        return RunResult(
            elapsed=self._outcome["elapsed"],
            returns=returns,
            stats=cluster.stats_snapshot(),
            sim_events=cluster.total_events(),
            config=self.config,
            cluster=cluster,
        )


def launch_master(
    config: ClusterConfig,
    master: Callable[[ParallelAPI], Generator],
    args: tuple = (),
    start_time: float = 0.0,
) -> LaunchedRun:
    """Schedule ``master(api, *args)`` on kernel 0 without running anything.

    The master is responsible for spawning workers itself (via
    ``api.spawn_workers``); its return value appears as rank 0's.
    """
    return LaunchedRun(config, master, args, start_time=start_time)


def _spmd_master(
    worker: Callable[..., Generator],
    args: tuple,
    args_of: Optional[Callable[[int], tuple]],
) -> Callable[[ParallelAPI], Generator]:
    def master(api: ParallelAPI) -> Generator[Event, Any, Dict[int, Any]]:
        handles = yield from api.spawn_workers(
            worker, args_of=args_of if args_of else (lambda rank: args)
        )
        my_value = yield from worker(api, *(args_of(0) if args_of else args))
        results = yield from api.wait_workers(handles)
        results[0] = my_value
        return results

    master.__name__ = getattr(worker, "__name__", "worker")
    return master


def launch_parallel(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
    args_of: Optional[Callable[[int], tuple]] = None,
    start_time: float = 0.0,
) -> LaunchedRun:
    """SPMD :func:`launch_master`: ``worker(api, *args)`` on every kernel."""
    return LaunchedRun(
        config,
        _spmd_master(worker, args, args_of),
        start_time=start_time,
        unwrap_spmd=True,
    )


def run_master(
    config: ClusterConfig,
    master: Callable[[ParallelAPI], Generator],
    args: tuple = (),
) -> RunResult:
    """Run ``master(api, *args)`` as the parallel application on kernel 0."""
    if config.shards and config.shard_workers == "process":
        # Master callables are routinely closures over live state (the
        # traffic backend, the experiment harness) and cannot be shipped to
        # worker processes.  SPMD entry points (run_parallel) can.
        raise DSEError(
            "shard_workers='process' supports SPMD entry points only "
            "(run_parallel); use shard_workers='inline' for master-driven runs"
        )
    return launch_master(config, master, args).finish()


def run_parallel(
    config: ClusterConfig,
    worker: Callable[..., Generator],
    args: tuple = (),
    args_of: Optional[Callable[[int], tuple]] = None,
) -> RunResult:
    """SPMD execution: ``worker(api, *args)`` runs once on every kernel.

    ``args_of(rank)`` overrides ``args`` per rank when given.  Returns the
    per-rank return values and cluster statistics.
    """
    if config.shards and config.shard_workers == "process":
        from ..shard.procpool import run_parallel_process

        return run_parallel_process(config, worker, args, args_of)
    return launch_parallel(config, worker, args, args_of).finish()
