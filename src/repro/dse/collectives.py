"""Collective operations over DSE global memory.

The shared-memory model makes collectives simple library routines rather
than protocol machinery: a broadcast is "root writes, everyone reads after
a barrier"; a reduction is "everyone writes its slot, root combines".
These are the patterns the bundled applications hand-roll; packaged here
for SPMD user code.

All collectives are *named* (like barriers) so independent collectives
never interfere, and every rank of the SPMD program must call them.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from ..errors import DSEError
from ..sim.core import Event
from .api import ParallelAPI

__all__ = ["broadcast", "reduce", "allreduce", "gather", "scatter", "REDUCE_OPS"]

REDUCE_OPS: dict = {
    "sum": lambda arr: arr.sum(axis=0),
    "max": lambda arr: arr.max(axis=0),
    "min": lambda arr: arr.min(axis=0),
    "prod": lambda arr: arr.prod(axis=0),
}

#: fixed-size scratch slots at the top of global memory (the bump
#: allocator grows from the bottom, so user data never reaches them)
SCRATCH_SLOTS = 64
SCRATCH_SLOT_WORDS = 8192


def _scratch_base(api: ParallelAPI, name: str, words_needed: int) -> int:
    """A deterministic per-name scratch address near the top of global
    memory.  The name hashes into one of :data:`SCRATCH_SLOTS` fixed-size
    slots; two *concurrently running* collectives with names in the same
    slot would interfere, so give simultaneous collectives distinct names
    (successive ones are safe — their barriers serialise them)."""
    if words_needed > SCRATCH_SLOT_WORDS:
        raise DSEError(
            f"collective {name!r} needs {words_needed} words "
            f"(> slot size {SCRATCH_SLOT_WORDS}); stage it via gm_alloc instead"
        )
    gm = api.kernel.gmem
    slot = sum(name.encode()) % SCRATCH_SLOTS
    base = gm.total_words - (slot + 1) * SCRATCH_SLOT_WORDS
    if base < 0:
        raise DSEError("global memory too small for collective scratch slots")
    return base


def broadcast(
    api: ParallelAPI,
    name: str,
    values: Optional[Sequence[float]],
    nwords: int,
    root: int = 0,
) -> Generator[Event, Any, np.ndarray]:
    """Root publishes ``values`` (length ``nwords``); every rank returns them."""
    base = _scratch_base(api, name, nwords)
    if api.rank == root:
        data = np.asarray(values, dtype=np.float64).ravel()
        if len(data) != nwords:
            raise DSEError(f"broadcast {name!r}: got {len(data)} words, said {nwords}")
        yield from api.gm_write(base, data)
    yield from api.barrier(f"bcast:{name}")
    result = yield from api.gm_read(base, nwords)
    yield from api.barrier(f"bcast2:{name}")
    return result


def reduce(
    api: ParallelAPI,
    name: str,
    values: Sequence[float],
    op: str = "sum",
    root: int = 0,
) -> Generator[Event, Any, Optional[np.ndarray]]:
    """Element-wise reduction of one equal-length vector per rank; the
    root returns the result, others ``None``."""
    if op not in REDUCE_OPS:
        raise DSEError(f"unknown reduction op {op!r}; known: {sorted(REDUCE_OPS)}")
    data = np.asarray(values, dtype=np.float64).ravel()
    nwords = len(data)
    base = _scratch_base(api, name, nwords * api.size)
    yield from api.gm_write(base + api.rank * nwords, data)
    yield from api.barrier(f"reduce:{name}")
    result = None
    if api.rank == root:
        flat = yield from api.gm_read(base, nwords * api.size)
        result = REDUCE_OPS[op](flat.reshape(api.size, nwords))
    yield from api.barrier(f"reduce2:{name}")
    return result


def allreduce(
    api: ParallelAPI,
    name: str,
    values: Sequence[float],
    op: str = "sum",
) -> Generator[Event, Any, np.ndarray]:
    """Reduction whose result every rank receives."""
    reduced = yield from reduce(api, name, values, op=op, root=0)
    nwords = len(np.asarray(values).ravel())
    result = yield from broadcast(
        api, f"{name}:ar", reduced if api.rank == 0 else None, nwords, root=0
    )
    return result


def gather(
    api: ParallelAPI,
    name: str,
    values: Sequence[float],
    root: int = 0,
) -> Generator[Event, Any, Optional[np.ndarray]]:
    """Concatenate one equal-length vector per rank at the root
    (shape ``(size, nwords)``); others return ``None``."""
    data = np.asarray(values, dtype=np.float64).ravel()
    nwords = len(data)
    base = _scratch_base(api, name, nwords * api.size)
    yield from api.gm_write(base + api.rank * nwords, data)
    yield from api.barrier(f"gather:{name}")
    result = None
    if api.rank == root:
        flat = yield from api.gm_read(base, nwords * api.size)
        result = flat.reshape(api.size, nwords).copy()
    yield from api.barrier(f"gather2:{name}")
    return result


def scatter(
    api: ParallelAPI,
    name: str,
    values: Optional[Sequence[float]],
    nwords_each: int,
    root: int = 0,
) -> Generator[Event, Any, np.ndarray]:
    """Root distributes ``size * nwords_each`` words; rank r returns slice r."""
    base = _scratch_base(api, name, nwords_each * api.size)
    if api.rank == root:
        data = np.asarray(values, dtype=np.float64).ravel()
        if len(data) != nwords_each * api.size:
            raise DSEError(
                f"scatter {name!r}: need {nwords_each * api.size} words, got {len(data)}"
            )
        yield from api.gm_write(base, data)
    yield from api.barrier(f"scatter:{name}")
    result = yield from api.gm_read(base + api.rank * nwords_each, nwords_each)
    yield from api.barrier(f"scatter2:{name}")
    return result
