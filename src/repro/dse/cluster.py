"""Cluster construction: machines, network, kernels, routing.

A :class:`Cluster` assembles the full simulated system from a
:class:`ClusterConfig` and owns the cross-cutting lookups (kernel routes,
rank placement, SSI information requests).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..errors import ConfigurationError
from ..hardware.node import NodeSpec
from ..osmodel.machine import Machine
from ..protocol.transport import make_transport
from ..sim.core import Event, Simulator
from ..sim.rng import RandomStreams
from ..network.topology import build_network
from .config import ClusterConfig
from .exchange import DSE_BASE_PORT
from .gmem import GlobalMemoryManager
from .kernel import DSEKernel
from .messages import DSEMessage

__all__ = ["Cluster"]


class Cluster:
    """One fully wired simulated DSE cluster.

    Construction is factored into overridable hooks (``_init_sims``,
    ``_machine_sim``, ``_build_network``, ``_post_build``) so the sharded
    variant (:class:`repro.shard.cluster.ShardedCluster`) can distribute
    machines across several concurrently advancing simulators while
    reusing every other wiring step verbatim."""

    #: overridden by the sharded subclass; drives incremental-run guards
    is_sharded = False

    def __init__(self, config: ClusterConfig, start_time: float = 0.0):
        # ``start_time`` restarts the simulated clock mid-history: the
        # replay debugger's snapshot-restore path builds a fresh cluster
        # whose clock begins at the checkpoint's commit time.
        self.config = config
        self._init_sims(start_time)
        self.rng = RandomStreams(config.seed)
        from ..obs import MetricsSampler, SpanRecorder
        from ..sim.monitor import Tracer, StatSet

        #: per-message trace (populated only when config.trace is set)
        self.tracer = Tracer(enabled=config.trace)
        #: cross-layer span recorder; every layer below captures it from
        #: ``sim.obs`` at construction time, so it must exist before any
        #: network/machine component is built.
        self.obs = SpanRecorder(enabled=config.obs_trace, limit=config.obs_span_limit)
        self._attach_obs()
        #: dynamic sanitizers (race/deadlock detection; repro.sanitize).
        #: Must exist before the kernels — gmem and sync capture it at
        #: construction time.
        from ..sanitize import Sanitizer

        self.sanitizer = Sanitizer(
            modes=config.sanitize_modes,
            world=config.n_processors,
            block_words=config.block_words,
            obs=self.obs,
        )
        #: resilience manager (None when config.resilience is None).  Must
        #: exist before the kernels — exchange/gmem/sync/kernel capture the
        #: reference at construction time (the ``is not None`` pattern).
        self.resilience = None
        if config.resilience is not None:
            from ..resilience.manager import ResilienceManager

            self.resilience = ResilienceManager(self, config.resilience)
        #: checkpoint observability (size / write latency / ring churn);
        #: always present so hook sites need no existence checks
        self.ckpt_stats = StatSet("ckpt")
        #: record/replay recorder (None when config.replay is None).  Must
        #: exist before the kernels — gmem and kernel capture the reference
        #: at construction time (the ``is not None`` pattern).
        self.replay = None
        if config.replay is not None:
            from ..replay.recorder import ReplayRecorder

            self.replay = ReplayRecorder(self, config.replay)

        n_machines = config.machines_used
        self.network = self._build_network(n_machines)
        self.machines: List[Machine] = []
        for m in range(n_machines):
            nic = self.network.nic(m)
            sim = self._machine_sim(m)
            transport = make_transport(sim, nic, config.transport)
            node = NodeSpec(node_id=m, platform=config.platform_of_machine(m))
            self.machines.append(Machine(sim, node, nic, transport))

        self.kernels: List[DSEKernel] = [
            DSEKernel(k, self.machines[config.machine_of(k)], self)
            for k in range(config.n_processors)
        ]
        # Full routing mesh: every kernel can reach every kernel.
        for a in self.kernels:
            for b in self.kernels:
                a.exchange.add_route(
                    b.kernel_id, b.machine.station_id, DSE_BASE_PORT + b.kernel_id
                )

        if self.resilience is not None:
            # Kernels and routes exist: install the RES_* services, the
            # heartbeat agents, and the monitor.
            self.resilience.wire()

        #: periodic StatSet/gauge sampler (None unless configured)
        self.metrics: Optional[MetricsSampler] = None
        if config.obs_metrics_interval > 0:
            self.metrics = MetricsSampler(self.sim, config.obs_metrics_interval)
            self._register_metrics_sources(self.metrics)
            self.metrics.start()

        self._post_build()

    # -- construction hooks (overridden by the sharded cluster) -------------
    def _init_sims(self, start_time: float) -> None:
        """Create the simulator(s); ``self.sim`` is the canonical clock."""
        self.sim = Simulator(start_time=start_time)
        #: every event loop of this cluster (one here; one per shard there)
        self.sims = [self.sim]

    def _attach_obs(self) -> None:
        for sim in self.sims:
            sim.obs = self.obs

    def _machine_sim(self, machine_id: int) -> Simulator:
        """The event loop machine ``machine_id`` (and its kernels) run on."""
        return self.sim

    def _build_network(self, n_machines: int):
        return build_network(self.sim, self.rng, n_machines, self.config.fabric)

    def _post_build(self) -> None:
        """Last construction step (the sharded cluster builds its engine)."""

    # -- execution ----------------------------------------------------------
    def run_all(self) -> None:
        """Drain the event loop(s) to completion."""
        self.sim.run_all()

    def total_events(self) -> int:
        return self.sim.events_processed

    def total_cancelled(self) -> int:
        return self.sim.events_cancelled

    def master_sim(self) -> Simulator:
        """The event loop that hosts the master driver (kernel 0's)."""
        return self._machine_sim(self.config.machine_of(0))

    def _register_metrics_sources(self, sampler) -> None:
        """Wire the explanatory levels + every subsystem StatSet."""
        fabric = self.network.fabric
        if self.sanitizer.enabled:
            sampler.register_statset("san", self.sanitizer.stats)
        if self.resilience is not None:
            sampler.register_statset("res", self.resilience.stats)
        if self.resilience is not None or self.replay is not None:
            sampler.register_statset("ckpt", self.ckpt_stats)
        if hasattr(fabric, "utilization"):
            sampler.register("bus.utilization", lambda: fabric.utilization.level)
        if hasattr(fabric, "collision_rate"):
            sampler.register("bus.collision_rate", fabric.collision_rate)
        sampler.register_statset("bus", fabric.stats)
        for machine in self.machines:
            host = machine.hostname
            cpu = machine.cpu
            sampler.register(f"{host}.run_queue", lambda c=cpu: c.run_queue.level)
            sampler.register(f"{host}.nic.tx_depth", lambda n=machine.nic: len(n.tx_queue))
            sampler.register_statset(host, machine.stats)
            sampler.register_statset(f"{host}.nic", machine.nic.stats)
            tstats = getattr(machine.transport, "stats", None)
            if tstats is not None:
                # Reliable/SR/dual transports: retransmissions, timeouts,
                # cwnd floor hits, SACKs... under ``<host>.tp``.
                sampler.register_statset(f"{host}.tp", tstats)
        for kernel in self.kernels:
            gm = kernel.gmem.stats
            sampler.register_statset(f"k{kernel.kernel_id}.gmem", gm)
            sampler.register_statset(f"k{kernel.kernel_id}.exchange", kernel.exchange.stats)

            def hit_ratio(stats=gm):
                local = stats.counter("local_reads").value
                remote = stats.counter("remote_reads").value
                # Under the caching policy "hits" replaces "local_reads".
                local += stats.counter("hits").value
                total = local + remote + stats.counter("misses").value
                return local / total if total else 1.0

            sampler.register(f"k{kernel.kernel_id}.gmem.hit_ratio", hit_ratio)

    # -- lookups ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.config.n_processors

    def kernel(self, kernel_id: int) -> DSEKernel:
        try:
            return self.kernels[kernel_id]
        except IndexError:
            raise ConfigurationError(f"no kernel {kernel_id}") from None

    def placement(self, rank: int) -> int:
        """Kernel that runs DSE process ``rank`` (identity by default; the
        SSI layer installs smarter policies through this hook)."""
        if not (0 <= rank < self.size):
            raise ConfigurationError(f"rank {rank} out of range 0..{self.size - 1}")
        return rank

    def make_gmem(self, kernel: DSEKernel) -> GlobalMemoryManager:
        """Build the kernel's global-memory manager per the config policy."""
        if self.config.coherence == "home":
            return GlobalMemoryManager(
                kernel, self.config.total_gm_words, self.config.block_words
            )
        from .coherence import CachingGlobalMemory

        return CachingGlobalMemory(
            kernel, self.config.total_gm_words, self.config.block_words
        )

    # -- SSI support -----------------------------------------------------------
    def ssi_info_response(self, kernel: DSEKernel, msg: DSEMessage) -> DSEMessage:
        """Answer a cluster-information request (served by any kernel)."""
        info = {
            "hostname": kernel.machine.hostname,
            "kernel_id": kernel.kernel_id,
            "platform": kernel.machine.platform.name,
            "load_average": kernel.machine.load_average(),
            "live_processes": len(kernel.machine.live_processes),
        }
        return msg.make_response(data=info, extra_bytes=128)

    # -- teardown ----------------------------------------------------------
    def shutdown_from(self, kernel_id: int = 0) -> Generator[Event, Any, None]:
        """Stop every kernel's service loop (drive from a DSE process)."""
        origin = self.kernel(kernel_id)
        # Drain the origin's combined writes while every home still serves.
        yield from origin.gmem.flush()
        for k in range(self.size):
            if self.resilience is not None and not self.resilience.usable(k):
                continue  # crashed (and never restarted): nothing to stop
            yield from origin.request_shutdown_of(k)

    # -- aggregate statistics ---------------------------------------------------
    def _fabric_snapshot(self, out: Dict[str, float]) -> None:
        """Fabric counters (the sharded cluster sums its per-shard cards)."""
        fabric = self.network.fabric
        out["net.frames_sent"] = fabric.stats.counter("frames_sent").value
        out["net.collisions"] = fabric.stats.counter("collisions").value
        out["net.bytes_sent"] = fabric.stats.counter("bytes_sent").value
        out["net.collision_rate"] = fabric.collision_rate()

    def stats_snapshot(self) -> Dict[str, float]:
        """Cluster-wide counters the experiment reports cite."""
        out: Dict[str, float] = {}
        self._fabric_snapshot(out)
        out["msgs_sent"] = sum(
            m.stats.counter("msgs_sent").value for m in self.machines
        )
        # Transport-level health (zero for the plain datagram transport,
        # which keeps no such counters): how hard reliability had to work.
        transport_stats = [
            m.transport.stats
            for m in self.machines
            if getattr(m.transport, "stats", None) is not None
        ]
        for key in (
            "retransmissions",
            "timeouts",
            "fast_retransmits",
            "partial_ack_retransmits",
            "cwnd_floor_hits",
            "duplicates_dropped",
            "out_of_order_buffered",
            "unreliable_sent",
        ):
            out[f"net.{key}"] = float(
                sum(st.counter(key).value for st in transport_stats)
            )
        out["gm.remote_reads"] = sum(
            k.gmem.stats.counter("remote_reads").value for k in self.kernels
        )
        out["gm.remote_writes"] = sum(
            k.gmem.stats.counter("remote_writes").value for k in self.kernels
        )
        out["gm.local_reads"] = sum(
            k.gmem.stats.counter("local_reads").value for k in self.kernels
        )
        out["gm.local_writes"] = sum(
            k.gmem.stats.counter("local_writes").value for k in self.kernels
        )
        out["gm.combined_reads"] = sum(
            k.gmem.stats.counter("combined_reads").value for k in self.kernels
        )
        out["gm.batch_flushes"] = sum(
            k.gmem.stats.counter("batch_flushes").value for k in self.kernels
        )
        out["gm.batched_runs"] = sum(
            k.gmem.stats.counter("batched_runs").value for k in self.kernels
        )
        out["max_load_average"] = max(m.load_average() for m in self.machines)
        if self.sanitizer.enabled:
            san = self.sanitizer.stats
            for key in (
                "races",
                "lock_cycles",
                "barrier_faults",
                "lock_stalls",
                "accesses_checked",
                "sync_ops",
            ):
                out[f"san.{key}"] = san.counter(key).value
        if self.resilience is not None:
            res = self.resilience.stats
            for key in (
                "crashes",
                "restarts",
                "suspicions",
                "suspicions_cleared",
                "deaths",
                "joins",
                "heartbeats",
                "checkpoints",
                "rollbacks",
                "tasks_lost",
                "rpc_aborts",
                "locks_revoked",
                "barriers_reconfigured",
            ):
                out[f"res.{key}"] = res.counter(key).value
        if self.resilience is not None or self.replay is not None:
            ckpt = self.ckpt_stats
            out["ckpt.snapshots"] = ckpt.counter("snapshots").value
            out["ckpt.commits"] = ckpt.counter("commits").value
            out["ckpt.bytes"] = ckpt.tally("snapshot_bytes").total
        if self.replay is not None:
            out["ckpt.ring_retained"] = len(self.replay.ring)
            out["ckpt.ring_evictions"] = self.replay.ring.evictions
        return out
