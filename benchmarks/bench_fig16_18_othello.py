"""Figures 16-18: Othello game speed-up on the three platforms (paper §4.3).

Expected shapes (checked automatically): shallow search depths show no
improvement as processors are added (communication frequency dominates the
tiny jobs); higher depths show clear parallel speed-up.
"""

import pytest

from conftest import run_figure

CASES = [("sunos", "fig16"), ("aix", "fig17"), ("linux", "fig18")]


@pytest.mark.parametrize("platform,fig_id", CASES)
def test_othello_speedup_figures(benchmark, fast_mode, platform, fig_id):
    fig = run_figure(benchmark, fig_id, fast_mode, check=True)
    # Deeper searches always speed up at least as well as shallower ones
    # at the 6-processor knee.
    at6 = [series[fig.x_values.index(6)] for _, series in sorted(fig.series.items())]
    assert at6[-1] > at6[0]
