"""Ablation: the virtual cluster (kernels doubling up on 6 machines) vs
12 real machines.

The paper attributes the performance decrease beyond 6 processors to
starting two DSE kernels per machine — "the machine load increases in
proportion to this number".  Giving the same 12 kernels 12 real machines
isolates that effect: the knee must disappear.
"""

import pytest

from repro.apps import gauss_seidel_worker, othello_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util.tables import Table


def _elapsed(res):
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def _run(worker, args, p, machines):
    config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=p, n_machines=machines
    )
    return run_parallel(config, worker, args=args)


def test_virtual_cluster_knee_gauss_seidel(benchmark):
    def run():
        return {
            "p6": _run(gauss_seidel_worker, (900, 5, 7, False), 6, 6),
            "p12_virtual": _run(gauss_seidel_worker, (900, 5, 7, False), 12, 6),
            "p12_real": _run(gauss_seidel_worker, (900, 5, 7, False), 12, 12),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["configuration", "elapsed_s", "max loadavg"], title="Gauss-Seidel N=900")
    for name, res in out.items():
        t.add(name, _elapsed(res), round(res.stats["max_load_average"], 2))
    print("\n" + t.render())
    # Doubling kernels on 6 machines is slower than 6 kernels...
    assert _elapsed(out["p12_virtual"]) > _elapsed(out["p6"])
    # ...but the same 12 kernels on 12 real machines beat the virtual setup.
    assert _elapsed(out["p12_real"]) < _elapsed(out["p12_virtual"])


def test_virtual_cluster_load_average_doubles(benchmark):
    """With a compute-bound static partition, a doubled-up machine runs at
    roughly twice the load average of a one-kernel-per-machine setup."""

    def compute_worker(api):
        yield from api.barrier("go")
        t0 = api.now
        yield from api.compute_seconds(0.5)
        yield from api.barrier("end")
        return {"t0": t0, "t1": api.now}

    def run():
        return (
            _run(compute_worker, (), 6, 6),
            _run(compute_worker, (), 12, 6),
        )

    six, twelve = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nmax load average: 6 kernels {six.stats['max_load_average']:.2f}, "
        f"12-on-6 {twelve.stats['max_load_average']:.2f}"
    )
    assert twelve.stats["max_load_average"] > 1.5 * six.stats["max_load_average"]
