"""Communication-frequency accounting: messages vs processors per workload.

The paper explains every failure to scale through "communication
frequency"; this bench makes that quantitative — for each application, the
wire-message count per processor count, next to the achieved speed-up.
High message growth with flat speed-up is the signature of a
granularity-limited workload.
"""

import os

import pytest

from repro.apps import (
    dct2_worker,
    gauss_seidel_worker,
    knights_tour_worker,
    othello_worker,
)
from repro.experiments.scaling import parse_int_list, sweep_messages
from repro.util.tables import Table

#: processor sweep — override with e.g. REPRO_MESSAGE_PROCS=1,2,6,12,24;
#: shared with bench_large_cluster via ``sweep_messages`` so both benches
#: report comparable columns
PROCS = parse_int_list(os.environ.get("REPRO_MESSAGE_PROCS", "1,2,6,12"))

WORKLOADS = [
    ("gauss-seidel N=300", gauss_seidel_worker, (300, 5, 7, False)),
    ("dct 2x2", dct2_worker, (64, 2, 0.25, 11, False)),
    ("dct 8x8", dct2_worker, (64, 8, 0.25, 11, False)),
    ("othello d=6", othello_worker, (6,)),
    ("knight 512 jobs", knights_tour_worker, (512,)),
]


def test_message_counts_scale_with_workload(benchmark):
    def run():
        return [
            (name, *sweep_messages(worker, args, PROCS, platform="sunos"))
            for name, worker, args in WORKLOADS
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["workload"]
        + [f"msgs(p={p})" for p in PROCS]
        + [f"speedup(p={p})" for p in PROCS[1:]],
        title="communication frequency vs scaling",
    )
    for name, msgs, times in rows:
        table.add(
            name,
            *[int(m) for m in msgs],
            *[round(times[0] / t, 2) for t in times[1:]],
        )
    print("\n" + table.render())

    by_name = {name: (msgs, times) for name, msgs, times in rows}
    # One processor sends nothing (everything is an own-node library call).
    for name, (msgs, _times) in by_name.items():
        if PROCS[0] == 1:
            assert msgs[0] == 0, name
        assert msgs[-1] > 0, name
    # The knight's-tour 512-job run is the chattiest workload at 12 procs.
    kt_msgs = by_name["knight 512 jobs"][0][-1]
    assert all(
        kt_msgs >= by_name[name][0][-1]
        for name in by_name
        if name != "knight 512 jobs"
    )
    # And fine-grain DCT sends more messages than coarse (4x the jobs;
    # a fixed ~90-message spawn/barrier baseline dilutes the ratio).
    assert by_name["dct 2x2"][0][-1] > 1.5 * by_name["dct 8x8"][0][-1]
