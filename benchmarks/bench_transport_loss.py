"""Transport x burst-loss sweep: SR+SACK vs stop-and-wait vs go-back-N.

The modern-transport acceptance bar: under Gilbert–Elliott burst loss the
selective-repeat transport (and the dual-channel service built on it) must
sustain >= 10x the goodput of the seed's stop-and-wait protocol at the
canonical loss point, while staying *bit-identical* to it on loss-free
application runs — reliability strategy must change timing, never results.

Rows come from :mod:`repro.perf.netbench`, the same canonical scenarios
``tools/check_bench.py --suite transport`` records in
``BENCH_transport.json``; a DNF row means the transport exhausted its
retry budget mid-burst (stop-and-wait's 8-retry cap dies on long bursts).
"""

import numpy as np
import pytest

from repro.apps import matmul_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.network import FabricConfig
from repro.perf.netbench import CANONICAL, matrix_ratios, run_matrix, sweep_rows
from repro.util.tables import Table

REQUIRED_RATIO = 10.0


def test_sr_beats_stop_and_wait_under_burst_loss(benchmark, fast_mode):
    loss_points = (0.0, 0.01, 0.02) if fast_mode else (0.0, 0.01, 0.02, 0.05)
    rows = benchmark.pedantic(
        lambda: sweep_rows(loss_points=loss_points), rounds=1, iterations=1
    )
    t = Table(
        ["transport", "p_enter_bad", "goodput_msg_s", "elapsed_s",
         "retransmits", "timeouts", "speedup"],
        title=(f"transport goodput under Gilbert-Elliott burst loss "
               f"({CANONICAL['n_messages']} msgs, "
               f"{CANONICAL['payload_bytes']} B, seed {CANONICAL['seed']})"),
    )
    for row in rows:
        t.add(
            row["transport"],
            row["p_enter_bad"],
            row["goodput_mps"] if row["completed"] else "DNF",
            row["elapsed_s"] if row["completed"] else "-",
            row["retransmissions"],
            row["timeouts"],
            row["speedup_vs_stop_and_wait"],
        )
    print("\n" + t.render())
    by_key = {(r["transport"], r["p_enter_bad"]): r for r in rows}
    gate = CANONICAL["p_enter_bad"]
    for kind in ("sr", "dual"):
        row = by_key[(kind, gate)]
        assert row["completed"], f"{kind} DNF'd at the canonical loss point"
        assert row["speedup_vs_stop_and_wait"] >= REQUIRED_RATIO, (
            f"{kind} only {row['speedup_vs_stop_and_wait']}x vs stop-and-wait "
            f"at p_enter_bad={gate} (need >= {REQUIRED_RATIO}x)"
        )
    # Loss-free, every reliable transport pipelines identically fast — the
    # win must come from loss recovery, not from cheating the cost model.
    for kind in ("sr", "dual"):
        assert by_key[(kind, 0.0)]["elapsed_s"] == pytest.approx(
            by_key[("reliable-gbn", 0.0)]["elapsed_s"]
        )


def test_sr_speedup_is_deterministic(benchmark):
    """The whole matrix repeats bit-for-bit: CI can compare it exactly."""
    first, second = benchmark.pedantic(
        lambda: (run_matrix(), run_matrix()), rounds=1, iterations=1
    )
    assert first == second
    ratios = matrix_ratios(first)
    assert ratios[f"sr@{CANONICAL['p_enter_bad']:g}"] >= REQUIRED_RATIO


def _run_matmul(transport):
    config = ClusterConfig(
        platform=get_platform("sunos"),
        n_processors=4,
        transport=transport,
        fabric=FabricConfig(kind="switch"),
    )
    return run_parallel(config, matmul_worker, args=(12,))


def _data_only(returns):
    """Strip per-rank timing (t0/t1): transports change *when*, not *what*."""
    return {
        rank: {k: v for k, v in ret.items() if k not in ("t0", "t1")}
        for rank, ret in returns.items()
    }


def test_transports_are_bit_identical_on_results(benchmark):
    """Same seed, loss-free: every transport computes the same matmul.

    The transport may only reorder/redo *wire traffic*; the simulated
    application must converge on identical numbers.  (Timing legitimately
    differs — pipelining is the whole point.)
    """
    runs = benchmark.pedantic(
        lambda: {k: _run_matmul(k) for k in ("reliable", "sr", "dual")},
        rounds=1,
        iterations=1,
    )
    base = _data_only(runs["reliable"].returns)
    for kind in ("sr", "dual"):
        got = _data_only(runs[kind].returns)
        assert got.keys() == base.keys()
        for rank in base:
            for field, want in base[rank].items():
                have = got[rank][field]
                same = (have == want)
                if isinstance(want, np.ndarray):
                    same = np.array_equal(have, want)
                assert same, f"{kind} changed rank {rank} field {field!r}"
    t = Table(["transport", "elapsed_s", "retransmissions", "unreliable_sent"],
              title="matmul(12) on 4 kernels, loss-free switch")
    for kind, res in runs.items():
        t.add(kind, round(res.elapsed, 6),
              int(res.stats["net.retransmissions"]),
              int(res.stats["net.unreliable_sent"]))
    print("\n" + t.render())
    # The dual service actually used its raw datagram lane.
    assert runs["dual"].stats["net.unreliable_sent"] > 0
    assert runs["reliable"].stats["net.unreliable_sent"] == 0
