"""Sanitizer overhead: wall-clock cost of race + deadlock detection.

Runs the Knight's-Tour workload (the message-heaviest figure driver) with
``sanitize`` off and on and reports the wall-clock ratio.  The contract
mirrors the tracing one (``bench_obs_overhead.py``):

* **disabled** — every hook site is guarded by one ``is not None`` test
  on a cached detector reference, so a plain run must not pay for the
  sanitizers' existence (guard micro-benchmark below);
* **enabled** — shadow-state updates cost real wall-clock (reported,
  loosely bounded) but the sanitizers only *observe*: simulated time is
  bit-identical with detection on and off.
"""

import time

from repro.apps.knights_tour import knights_tour_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.sanitize import NULL_SANITIZER

N_JOBS = 16
REPEATS = 3


def _run(sanitize) -> "tuple[float, float]":
    """(best wall-clock seconds, simulated elapsed) over REPEATS runs."""
    best = float("inf")
    elapsed_sim = None
    for _ in range(REPEATS):
        config = ClusterConfig(
            platform=get_platform("sunos"), n_processors=4, sanitize=sanitize
        )
        start = time.perf_counter()
        result = run_parallel(config, knights_tour_worker, args=(N_JOBS,))
        best = min(best, time.perf_counter() - start)
        if elapsed_sim is None:
            elapsed_sim = result.elapsed
        else:
            assert result.elapsed == elapsed_sim  # run-to-run determinism
        assert result.cluster.sanitizer.report.clean
    return best, elapsed_sim


def test_sanitize_wall_clock_overhead():
    plain, sim_plain = _run(sanitize=False)
    checked, sim_checked = _run(sanitize=True)
    ratio = checked / plain
    print(f"\nknights-tour n_jobs={N_JOBS} p=4: "
          f"plain {plain:.3f}s, sanitized {checked:.3f}s, ratio {ratio:.2f}x")
    # The sanitizers never change what the simulation computes.
    assert sim_checked == sim_plain
    # Loose bound: shadow updates are dict/list work per access, not a
    # rewrite of the hot path.  (Wall-clock on shared CI is noisy.)
    assert ratio < 3.0, f"sanitize overhead ratio {ratio:.2f}x is out of line"


def test_disabled_guard_is_cheap():
    """The disabled-mode hook is one `x is not None` test — measure it."""
    race = NULL_SANITIZER.race
    assert race is None  # the shape every gmem/sync hook site relies on
    n = 1_000_000

    start = time.perf_counter()
    for _ in range(n):
        if race is not None:
            raise AssertionError("unreachable")
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        pass
    empty = time.perf_counter() - start

    per_hook_ns = (guarded - empty) / n * 1e9
    print(f"\ndisabled-mode guard: {per_hook_ns:.1f} ns per hook site")
    # An identity test must stay within interpreter noise; the bound is
    # deliberately loose for shared machines.
    assert per_hook_ns < 500, f"guard costs {per_hook_ns:.0f} ns — not zero-cost"
