"""Figures 4-9: Gauss-Seidel execution time and speed-up on the three
platforms (paper §4.1).

Expected shapes (checked automatically): small N collapses under
parallelisation; the largest N improves through 5-6 processors and
degrades beyond 6 (two kernels per machine — the virtual cluster).
"""

import pytest

from conftest import run_figure

# (time figure, speedup figure) per platform, in the paper's order
CASES = [
    ("sunos", "fig4", "fig5"),
    ("aix", "fig6", "fig7"),
    ("linux", "fig8", "fig9"),
]


@pytest.mark.parametrize("platform,time_id,_speed_id", CASES)
def test_execution_time_figures(benchmark, fast_mode, platform, time_id, _speed_id):
    fig = run_figure(benchmark, time_id, fast_mode, check=False)
    # Execution-time sanity: larger systems take longer at every p.
    names = sorted(fig.series, key=lambda s: int(s.split("=")[1]))
    for i, p in enumerate(fig.x_values):
        times = [fig.series[name][i] for name in names]
        assert times == sorted(times), f"time not monotone in N at p={p}"


@pytest.mark.parametrize("platform,_time_id,speed_id", CASES)
def test_speedup_figures(benchmark, fast_mode, platform, _time_id, speed_id):
    run_figure(benchmark, speed_id, fast_mode, check=True)
