"""Ablation: home-based request/response DSM vs write-invalidate caching.

DESIGN.md calls out the DSM policy as a design choice; this bench
quantifies it in both directions:

* a read-mostly workload (every rank repeatedly reads a hot configuration
  block) — caching wins because repeated access is message-free;
* a write ping-pong (ranks alternately update one counter block) — the
  home policy wins because ownership migration costs more messages than
  plain write-through.
"""

import numpy as np
import pytest

from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util.tables import Table


def _cfg(policy, p=6):
    return ClusterConfig(
        platform=get_platform("sunos"), n_processors=p, coherence=policy
    )


def read_mostly_worker(api):
    gm = api.kernel.gmem
    hot = gm.slice_words * (api.size - 1)  # homed on the last kernel
    if api.rank == api.size - 1:
        yield from api.gm_write(hot, np.arange(64, dtype=float))
    yield from api.barrier("init")
    t0 = api.now
    total = 0.0
    for _ in range(40):
        data = yield from api.gm_read(hot, 64)
        total += float(data[0])
        yield from api.compute_seconds(0.0002)
    yield from api.barrier("done")
    return {"t0": t0, "t1": api.now, "total": total}


def pingpong_worker(api):
    yield from api.barrier("init")
    t0 = api.now
    for i in range(30):
        if api.rank == i % api.size:
            v = yield from api.gm_read_scalar(0)
            yield from api.gm_write_scalar(0, v + 1)
        yield from api.barrier(f"b{i}")
    final = yield from api.gm_read_scalar(0)
    return {"t0": t0, "t1": api.now, "final": final}


def _elapsed(res):
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def test_caching_wins_read_mostly(benchmark):
    def run():
        home = run_parallel(_cfg("home"), read_mostly_worker)
        cache = run_parallel(_cfg("cache"), read_mostly_worker)
        return home, cache

    home, cache = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["policy", "elapsed_s", "remote_reads"], title="read-mostly hot block")
    t.add("home", _elapsed(home), home.stats["gm.remote_reads"])
    t.add("cache", _elapsed(cache), cache.stats["gm.remote_reads"])
    print("\n" + t.render())
    assert _elapsed(cache) < 0.5 * _elapsed(home)


def test_home_wins_write_pingpong(benchmark):
    def run():
        home = run_parallel(_cfg("home", p=4), pingpong_worker)
        cache = run_parallel(_cfg("cache", p=4), pingpong_worker)
        return home, cache

    home, cache = benchmark.pedantic(run, rounds=1, iterations=1)
    assert home.returns[0]["final"] == 30.0
    assert cache.returns[0]["final"] == 30.0
    t = Table(["policy", "elapsed_s"], title="write ping-pong counter")
    t.add("home", _elapsed(home))
    t.add("cache", _elapsed(cache))
    print("\n" + t.render())
    assert _elapsed(home) < _elapsed(cache)
