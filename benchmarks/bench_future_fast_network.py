"""Future-work bench: "exploring and utilizing the raw performance of
high-speed networks" (paper §5).

The re-organised DSE abstracts the transport precisely so faster fabrics
can slot in.  This bench re-runs the communication-limited configurations
on a 100 Mbit/s bus: the Pentium-II cluster, whose 10 Mbit/s speed-ups were
the weakest (its CPU outruns the wire), must recover most of its lost
scaling.
"""

import pytest

from repro.apps import dct2_worker, gauss_seidel_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.network import FabricConfig
from repro.util.tables import Table


def _elapsed(res):
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def _speedup(worker, args, rate_bps, p=6):
    plat = get_platform("linux")
    seq = run_parallel(
        ClusterConfig(platform=plat, n_processors=1, n_machines=1,
                      fabric=FabricConfig(rate_bps=rate_bps)),
        worker, args=args,
    )
    par = run_parallel(
        ClusterConfig(platform=plat, n_processors=p,
                      fabric=FabricConfig(rate_bps=rate_bps)),
        worker, args=args,
    )
    return _elapsed(seq) / _elapsed(par)


def test_fast_ethernet_restores_gauss_seidel_scaling(benchmark):
    args = (500, 5, 7, False)

    def run():
        return (
            _speedup(gauss_seidel_worker, args, 10e6),
            _speedup(gauss_seidel_worker, args, 100e6),
        )

    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["fabric", "speed-up at 6 procs"], title="Gauss-Seidel N=500, Linux/PII")
    t.add("10 Mbit/s bus", f"{slow:.2f}x")
    t.add("100 Mbit/s bus", f"{fast:.2f}x")
    print("\n" + t.render())
    assert fast > slow * 1.5
    assert fast > 2.5  # protocol processing, not the wire, binds next


def test_fast_ethernet_helps_fine_grain_dct(benchmark):
    args = (64, 4, 0.25, 11, False)

    def run():
        return (
            _speedup(dct2_worker, args, 10e6),
            _speedup(dct2_worker, args, 100e6),
        )

    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["fabric", "speed-up at 6 procs"], title="DCT-II 4x4 blocks, Linux/PII")
    t.add("10 Mbit/s bus", f"{slow:.2f}x")
    t.add("100 Mbit/s bus", f"{fast:.2f}x")
    print("\n" + t.render())
    assert fast > slow
