"""Large-virtual-cluster scaling: 6 -> 256 nodes (docs/scaling.md).

The paper stops at 12 processors on 6 machines; this bench drives the same
system model into the large-cluster regime and backs the two scaling
claims documented in docs/scaling.md:

* a switched fabric beats the paper's shared bus on simulated completion
  time once the cluster is large (>= 32 nodes here);
* global-memory batching reduces the wire-message count per processor on
  the same configuration (knight's tour, the chattiest workload).

Columns (msgs per processor count, speed-up) come from the same
``sweep_messages`` helper as ``bench_message_scaling``, so the two benches
report directly comparable numbers.
"""

import pytest

from repro.apps import knights_tour_worker
from repro.experiments.scaling import (
    measure_scale_point,
    scale_sweep,
    scale_table,
    sweep_messages,
)
from repro.network.topology import FabricConfig
from repro.util.tables import Table

#: node grids; the fast grid still includes the 256-node headline run
GAUSS_NODES_FAST = (6, 32, 256)
GAUSS_NODES_FULL = (6, 16, 32, 64, 128, 256)
BUS_NODES = (6, 32)  # the bus comparison (the bus is the wall-clock hog)
KNIGHT_NODES_FAST = (6, 24)
KNIGHT_NODES_FULL = (6, 12, 24, 48)


def test_gauss_seidel_large_cluster(benchmark, fast_mode):
    """Gauss-Seidel to 256 nodes on the switch, bus comparison at 32."""
    nodes = GAUSS_NODES_FAST if fast_mode else GAUSS_NODES_FULL

    def run():
        switch = scale_sweep("gauss-seidel", nodes=nodes, fabric="switch", batching=True)
        bus = [
            measure_scale_point("gauss-seidel", n, fabric="ethernet", batching=True)
            for n in BUS_NODES
        ]
        return switch, bus

    switch, bus = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + scale_table(switch, title="gauss-seidel on the switch").render())
    print("\n" + scale_table(bus, title="gauss-seidel on the paper's bus").render())

    by_nodes = {p.nodes: p for p in switch}
    # The 256-node headline run completes end-to-end.
    assert by_nodes[256].elapsed > 0
    assert by_nodes[256].msgs > 0
    # Fixed problem size: past the knee, adding nodes costs elapsed time
    # (communication dominates) — the regime docs/scaling.md discusses.
    assert by_nodes[6].elapsed < by_nodes[256].elapsed
    assert by_nodes[32].msgs_per_proc < by_nodes[256].msgs_per_proc
    # The switch beats the bus on simulated completion time at >= 32 nodes.
    bus32 = next(p for p in bus if p.nodes == 32)
    assert by_nodes[32].elapsed < bus32.elapsed


def test_knights_tour_batching_wins(benchmark, fast_mode):
    """Batching cuts per-processor wire messages on the chattiest workload."""
    nodes = KNIGHT_NODES_FAST if fast_mode else KNIGHT_NODES_FULL
    args = (max(2 * nodes[-1], 64), 5, 0)
    config = {"fabric": FabricConfig(kind="switch"), "n_machines": nodes[-1]}

    def run():
        unbatched_msgs, unbatched_times = sweep_messages(
            knights_tour_worker, args, nodes, platform="linux",
            config_kwargs=dict(config, gmem_batching=False),
        )
        batched_msgs, batched_times = sweep_messages(
            knights_tour_worker, args, nodes, platform="linux",
            config_kwargs=dict(config, gmem_batching=True),
        )
        return unbatched_msgs, unbatched_times, batched_msgs, batched_times

    unbatched_msgs, unbatched_times, batched_msgs, batched_times = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        ["config"]
        + [f"msgs(p={p})" for p in nodes]
        + [f"msgs/proc(p={p})" for p in nodes],
        title=f"knight's tour {args[0]} jobs: write combining",
    )
    for label, msgs in (("unbatched", unbatched_msgs), ("batched", batched_msgs)):
        table.add(label, *msgs, *[round(m / p, 1) for m, p in zip(msgs, nodes)])
    print("\n" + table.render())

    # Batching reduces wire messages per processor at every cluster size.
    for p, um, bm in zip(nodes, unbatched_msgs, batched_msgs):
        assert bm < um, f"batching did not reduce messages at {p} nodes"
    # And never slows the simulated run down.
    for ut, bt in zip(unbatched_times, batched_times):
        assert bt <= ut * 1.05
