"""Figures 19-21: Knight's Tour execution time on the three platforms
(paper §4.4).

Expected shapes (checked automatically): a middling job count is most
efficient; the largest job count is least efficient (communication
frequency + shared-bus collisions); the midrange counts improve to ~5-6
processors and then decline (virtual-cluster doubling).
"""

import pytest

from conftest import run_figure

CASES = [("sunos", "fig19"), ("aix", "fig20"), ("linux", "fig21")]


@pytest.mark.parametrize("platform,fig_id", CASES)
def test_knights_tour_time_figures(benchmark, fast_mode, platform, fig_id):
    fig = run_figure(benchmark, fig_id, fast_mode, check=True)
    # All job counts search the same tree: sequential times are equal
    # (within the queue-setup epsilon).
    t1 = [series[0] for series in fig.series.values()]
    assert max(t1) / min(t1) < 1.2
