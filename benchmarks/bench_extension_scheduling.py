"""Extension bench: static vs dynamic job scheduling across workload skew.

Generalises the Knight's-Tour granularity study: the same job pool run
under the static cyclic deal (Knight's Tour style) and under the shared
pulling queue (Othello style), across job-size distributions.  Uniform
tiny jobs favour static (no queue round trips); skewed distributions that
stack long jobs on one rank favour dynamic.
"""

import pytest

from repro.apps import (
    DISTRIBUTIONS,
    dynamic_schedule_worker,
    job_sizes,
    static_schedule_worker,
)
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util.tables import Table


def _elapsed(worker, sizes, p=6):
    res = run_parallel(
        ClusterConfig(platform=get_platform("sunos"), n_processors=p),
        worker,
        args=(sizes,),
    )
    assert res.returns[0]["all_done"]
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def test_scheduling_policy_tradeoff(benchmark):
    cases = [
        ("uniform tiny", job_sizes(60, "uniform", mean_seconds=0.0005, seed=9)),
        ("uniform", job_sizes(48, "uniform", mean_seconds=0.02, seed=9)),
        ("bimodal skewed", job_sizes(48, "bimodal", mean_seconds=0.05, seed=7)),
        ("heavy tail", job_sizes(48, "heavy_tail", mean_seconds=0.05, seed=42)),
    ]

    def run():
        return [
            (name, _elapsed(static_schedule_worker, sizes),
             _elapsed(dynamic_schedule_worker, sizes))
            for name, sizes in cases
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        ["workload", "static_s", "dynamic_s", "winner"],
        title="scheduling policy vs workload skew (6 processors, SunOS)",
    )
    outcome = {}
    for name, s, d in rows:
        table.add(name, round(s, 4), round(d, 4), "dynamic" if d < s else "static")
        outcome[name] = (s, d)
    print("\n" + table.render())
    s, d = outcome["uniform tiny"]
    assert s < d  # queue overhead loses on uniform tiny jobs
    s, d = outcome["bimodal skewed"]
    assert d < s  # pulling wins once static stacking bites
