"""Sensitivity bench: the reproduction's conclusions vs calibration error.

Re-runs the Gauss-Seidel N=700 sweep with the protocol-processing costs
scaled 0.25x-4x and the bus at 5/10/100 Mbit/s, reporting where the
speed-up peak lands each time.  The paper's qualitative conclusion — a
peak at or below 6 processors on the era's LAN — must survive the whole
range; only a 10x-class fabric change moves it.
"""

import pytest

from repro.experiments import bandwidth_sensitivity, protocol_sensitivity
from repro.hardware import SUNOS_SPARCSTATION
from repro.util.tables import Table

KW = dict(n=700, sweeps=5, procs=(1, 2, 4, 6, 8, 12))


def test_protocol_cost_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: protocol_sensitivity(SUNOS_SPARCSTATION, scales=(0.25, 0.5, 1.0, 2.0, 4.0), **KW),
        rounds=1,
        iterations=1,
    )
    table = Table(
        ["protocol scale", "peak procs", "peak speed-up"],
        title="Gauss-Seidel N=700 vs protocol-cost calibration",
    )
    for scale, peak_p, peak_s in rows:
        table.add(f"{scale}x", peak_p, round(peak_s, 2))
    print("\n" + table.render())
    # The knee conclusion survives 16x of calibration range.
    assert all(peak_p <= 6 for _s, peak_p, _v in rows)
    # More expensive messages always hurt; below 1x the unchanged wire
    # takes over and the curve flattens (so no strict monotonicity there).
    speeds = {s: v for s, _p, v in rows}
    assert speeds[1.0] > speeds[2.0] > speeds[4.0]
    assert speeds[0.25] > speeds[4.0]


def test_bandwidth_sensitivity(benchmark):
    rows = benchmark.pedantic(
        lambda: bandwidth_sensitivity(SUNOS_SPARCSTATION, rates=(5e6, 10e6, 100e6), **KW),
        rounds=1,
        iterations=1,
    )
    table = Table(
        ["bus rate", "peak procs", "peak speed-up"],
        title="Gauss-Seidel N=700 vs fabric bandwidth",
    )
    for rate, peak_p, peak_s in rows:
        table.add(f"{rate/1e6:.0f} Mbit/s", peak_p, round(peak_s, 2))
    print("\n" + table.render())
    speeds = [v for _r, _p, v in rows]
    assert speeds == sorted(speeds)
    # Era LAN keeps the knee at <= 6; the 100 Mbit/s fabric lifts speed-up
    # (the remaining ceiling is protocol processing, not the wire).
    assert rows[1][1] <= 6
    assert rows[2][2] > rows[1][2] * 1.1
