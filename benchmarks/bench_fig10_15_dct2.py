"""Figures 10-15: DCT-II execution time and speed-up on the three
platforms (paper §4.2).

Expected shapes (checked automatically): the 2x2 block size shows no
useful speed-up (fine granularity: each message round-trip buys almost no
computation); 4x4 and 8x8 improve with processors, 8x8 best.
"""

import pytest

from conftest import run_figure

CASES = [
    ("sunos", "fig10", "fig11"),
    ("aix", "fig12", "fig13"),
    ("linux", "fig14", "fig15"),
]


@pytest.mark.parametrize("platform,time_id,_speed_id", CASES)
def test_execution_time_figures(benchmark, fast_mode, platform, time_id, _speed_id):
    fig = run_figure(benchmark, time_id, fast_mode, check=False)
    # Sequential time grows with block size (O(B^4) per block dominates
    # the O(B^2) traffic saving).
    t1 = {name: series[0] for name, series in fig.series.items()}
    assert t1["2x2"] < t1["4x4"] < t1["8x8"]


@pytest.mark.parametrize("platform,_time_id,speed_id", CASES)
def test_speedup_figures(benchmark, fast_mode, platform, _time_id, speed_id):
    run_figure(benchmark, speed_id, fast_mode, check=True)
