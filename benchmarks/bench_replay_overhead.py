"""Recording overhead: what the time-travel debugger costs.

The contract mirrors the other hook-site benches
(``bench_obs_overhead.py``, ``bench_resilience_overhead.py``,
``bench_sanitize_overhead.py``):

* **disabled** (``replay=None``) — every hook site is one ``is not None``
  test on a cached recorder reference, so a plain run pays nothing for
  the subsystem's existence: simulated time is bit-identical run to run
  and the guard itself is nanoseconds (micro-benchmark below);
* **enabled** — the checkpoint ring's barriers and snapshot copies cost
  real simulated and wall-clock time; both are reported and loosely
  bounded so a regression that makes recorded runs pathologically slow
  fails loudly;
* **replay** — seeking to the middle of a recording costs about one
  partial re-execution (determinism is the seek mechanism).
"""

import time

from repro.apps.gauss_seidel import gauss_seidel_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.replay import ReplayConfig, ReplaySession, WorkloadSpec, record

GS_PLAIN_ARGS = (48, 4, 7, False)  # n, sweeps, seed, verify
GS_CK_ARGS = (48, 4, 7, False)
GS_SPEC = WorkloadSpec(
    module="repro.resilience.workloads",
    attr="resilient_gauss_seidel",
    args=GS_CK_ARGS,
    ck_style=True,
    label="gauss-seidel",
)
REPEATS = 3


def _run_plain(replay) -> "tuple[float, float, int]":
    """(best wall seconds, simulated elapsed, events) for gauss-seidel."""
    best = float("inf")
    elapsed_sim = events = None
    for _ in range(REPEATS):
        config = ClusterConfig(
            platform=get_platform("sunos"), n_processors=4, replay=replay
        )
        start = time.perf_counter()
        result = run_parallel(config, gauss_seidel_worker, args=GS_PLAIN_ARGS)
        best = min(best, time.perf_counter() - start)
        if elapsed_sim is None:
            elapsed_sim, events = result.elapsed, result.sim_events
        else:
            assert result.elapsed == elapsed_sim  # bit-identical reruns
    return best, elapsed_sim, events


def test_disabled_path_is_bit_identical_and_cheap():
    off_wall, off_sim, off_events = _run_plain(None)
    # A workload that never calls api.checkpoint() exercises every hook
    # site's guard but records nothing: simulated time may not move by a
    # single bit with recording enabled.
    on_wall, on_sim, on_events = _run_plain(ReplayConfig())
    print(f"\ngauss-seidel n={GS_PLAIN_ARGS[0]} p=4: "
          f"replay=None {off_wall:.3f}s wall / {off_sim:.6f}s sim, "
          f"replay=on {on_wall:.3f}s wall / {on_sim:.6f}s sim")
    assert on_sim == off_sim
    assert on_events == off_events
    assert on_wall / off_wall < 1.5, (
        f"idle recorder costs x{on_wall / off_wall:.2f} wall"
    )


def test_recorded_run_is_loosely_bounded():
    from repro.resilience.workloads import resilient_gauss_seidel

    config = ClusterConfig(platform=get_platform("sunos"), n_processors=4)
    start = time.perf_counter()
    base = run_parallel(
        config,
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_CK_ARGS,
    )
    plain_wall = time.perf_counter() - start

    rec_config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=4,
        replay=ReplayConfig(),
    )
    start = time.perf_counter()
    recording = record(rec_config, spec=GS_SPEC)
    rec_wall = time.perf_counter() - start

    sim_ratio = recording.final["elapsed"] / base.elapsed
    wall_ratio = rec_wall / plain_wall
    print(f"\ngauss-seidel n={GS_CK_ARGS[0]} p=4: "
          f"plain {base.elapsed * 1e3:.3f} ms sim / {plain_wall:.3f}s wall, "
          f"recorded {recording.final['elapsed'] * 1e3:.3f} ms sim / "
          f"{rec_wall:.3f}s wall "
          f"(sim x{sim_ratio:.2f}, wall x{wall_ratio:.2f})")
    # Per-sweep ring checkpoints add two barriers each; they must stay a
    # small multiple of the app, not dominate it.
    assert sim_ratio < 3.0, f"recording sim cost x{sim_ratio:.2f}"
    assert wall_ratio < 10.0, f"recording wall cost x{wall_ratio:.2f}"


def test_seek_costs_about_one_partial_rerun():
    config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=4,
        replay=ReplayConfig(),
    )
    start = time.perf_counter()
    recording = record(config, spec=GS_SPEC)
    record_wall = time.perf_counter() - start

    session = ReplaySession(recording)
    start = time.perf_counter()
    session.seek(recording.end_time / 2)
    seek_wall = time.perf_counter() - start

    ratio = seek_wall / record_wall
    print(f"\nrecord {record_wall:.3f}s wall, "
          f"seek-to-midpoint {seek_wall:.3f}s wall (x{ratio:.2f})")
    # Seeking replays ~half the run (plus launch): well under two fulls.
    assert ratio < 2.0, f"seek costs x{ratio:.2f} of a full recording"


def test_disabled_guard_is_cheap():
    """The disabled-mode hook is one `x is not None` test — measure it."""
    config = ClusterConfig(n_processors=2, replay=None)
    from repro.dse.cluster import Cluster

    replay = Cluster(config).replay
    assert replay is None  # the shape every kernel/api hook relies on
    n = 1_000_000

    start = time.perf_counter()
    for _ in range(n):
        if replay is not None:
            raise AssertionError("unreachable")
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        pass
    empty = time.perf_counter() - start

    per_hook_ns = (guarded - empty) / n * 1e9
    print(f"\ndisabled-mode guard: {per_hook_ns:.1f} ns per hook site")
    assert per_hook_ns < 500, f"guard costs {per_hook_ns:.0f} ns — not zero-cost"
