"""Table 1: the experiment environments (three UNIX platforms)."""

from conftest import run_figure

from repro.hardware import get_platform, platform_names


def test_table1(benchmark, fast_mode):
    fig = run_figure(benchmark, "table1", fast_mode, check=False)
    assert len(fig.x_values) == 3


def test_table1_platform_cost_ordering(benchmark):
    """Sanity: per-message latency orders SunOS > AIX > Linux."""

    def costs():
        return [
            get_platform(name).os_costs.protocol_per_message
            for name in platform_names()
        ]

    sunos, aix, linux = benchmark(costs)
    assert sunos > aix > linux
