"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  They run on the
*fast* parameter grid by default (a few minutes total); set
``REPRO_FULL_FIGURES=1`` to use the paper's full grid.

Every benchmark prints the regenerated rows/series (run with ``-s`` to see
them) and asserts the paper-shape checks, so a passing benchmark suite
means the reproduction's qualitative results hold.
"""

import os

import pytest


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return os.environ.get("REPRO_FULL_FIGURES", "") != "1"


def run_figure(benchmark, fig_id: str, fast: bool, check: bool = True):
    """Generate one figure under pytest-benchmark and validate its shape."""
    from repro.experiments import FIGURES, check_figure

    fig = benchmark.pedantic(
        lambda: FIGURES[fig_id](fast=fast), rounds=1, iterations=1
    )
    print()
    print(fig.to_text())
    if check:
        failures = []
        for description, ok in check_figure(fig):
            print(f"  [{'PASS' if ok else 'FAIL'}] {description}")
            if not ok:
                failures.append(description)
        assert not failures, f"{fig_id} shape checks failed: {failures}"
    return fig
