"""Resilience overhead: what the crash-tolerance machinery costs.

The contract mirrors the sanitizer and tracing benches
(``bench_sanitize_overhead.py``, ``bench_obs_overhead.py``):

* **disabled** (``resilience=None``) — every hook site is one
  ``is not None`` test on a cached manager reference, so a plain run pays
  nothing for the subsystem's existence: wall-clock stays within noise of
  the contract bound and *simulated* time is bit-identical run to run
  (guard micro-benchmark below);
* **enabled, no faults** — heartbeats, membership bookkeeping, and
  per-sweep checkpoints cost real simulated and wall-clock time; both are
  reported and loosely bounded so a regression that makes fault-free runs
  pathologically slow fails loudly.
"""

import time

from repro.apps.knights_tour import knights_tour_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.resilience import ResilienceConfig, run_resilient
from repro.resilience.workloads import resilient_gauss_seidel

N_JOBS = 16
GS_ARGS = (48, 4, 7, False)  # n, sweeps, seed, verify
REPEATS = 3


def _run_plain() -> "tuple[float, float]":
    """(best wall-clock seconds, simulated elapsed) with resilience=None."""
    best = float("inf")
    elapsed_sim = None
    for _ in range(REPEATS):
        config = ClusterConfig(
            platform=get_platform("sunos"), n_processors=4, resilience=None
        )
        start = time.perf_counter()
        result = run_parallel(config, knights_tour_worker, args=(N_JOBS,))
        best = min(best, time.perf_counter() - start)
        if elapsed_sim is None:
            elapsed_sim = result.elapsed
        else:
            # The disabled path must stay bit-identical in simulated time.
            assert result.elapsed == elapsed_sim
    return best, elapsed_sim


def test_disabled_path_is_deterministic_and_cheap():
    plain, sim_plain = _run_plain()
    again, sim_again = _run_plain()
    print(f"\nknights-tour n_jobs={N_JOBS} p=4 resilience=None: "
          f"best {plain:.3f}s / {again:.3f}s, simulated {sim_plain:.6f}s")
    assert sim_plain == sim_again
    # Two best-of-three measurements of the *same* configuration bound the
    # disabled path against itself: the hooks add no systematic cost.
    assert min(plain, again) / max(plain, again) > 1 / 1.02 - 0.15


def test_fault_free_resilient_run_is_loosely_bounded():
    config = ClusterConfig(
        platform=get_platform("sunos"), n_processors=4, resilience=None
    )
    start = time.perf_counter()
    base = run_parallel(
        config,
        lambda api, *a: resilient_gauss_seidel(api, None, *a),
        args=GS_ARGS,
    )
    plain_wall = time.perf_counter() - start

    res_config = ClusterConfig(
        platform=get_platform("sunos"),
        n_processors=4,
        resilience=ResilienceConfig(),
    )
    start = time.perf_counter()
    clean = run_resilient(res_config, resilient_gauss_seidel, args=GS_ARGS)
    res_wall = time.perf_counter() - start

    sim_ratio = clean.elapsed / base.elapsed
    wall_ratio = res_wall / plain_wall
    print(f"\ngauss-seidel n={GS_ARGS[0]} p=4: "
          f"plain {base.elapsed * 1e3:.3f} ms sim / {plain_wall:.3f}s wall, "
          f"resilient {clean.elapsed * 1e3:.3f} ms sim / {res_wall:.3f}s wall "
          f"(sim x{sim_ratio:.2f}, wall x{wall_ratio:.2f})")
    assert clean.recoveries == 0
    # Heartbeats + per-sweep checkpoints cost simulated time, but must stay
    # a small multiple of the app, not dominate it.
    assert sim_ratio < 3.0, f"fault-free resilience sim cost x{sim_ratio:.2f}"
    assert wall_ratio < 10.0, f"fault-free resilience wall cost x{wall_ratio:.2f}"


def test_disabled_guard_is_cheap():
    """The disabled-mode hook is one `x is not None` test — measure it."""
    config = ClusterConfig(n_processors=2, resilience=None)
    from repro.dse.cluster import Cluster

    resilience = Cluster(config).resilience
    assert resilience is None  # the shape every kernel/api hook relies on
    n = 1_000_000

    start = time.perf_counter()
    for _ in range(n):
        if resilience is not None:
            raise AssertionError("unreachable")
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        pass
    empty = time.perf_counter() - start

    per_hook_ns = (guarded - empty) / n * 1e9
    print(f"\ndisabled-mode guard: {per_hook_ns:.1f} ns per hook site")
    assert per_hook_ns < 500, f"guard costs {per_hook_ns:.0f} ns — not zero-cost"
