"""Ablation: DSE shared memory vs PVM/MPI-style message passing.

The paper positions DSE against PVM/MPI; this bench runs the *same*
block Gauss-Seidel numerics both ways on identical simulated hardware.
Expected: message passing is somewhat faster per sweep (push-style
allgather avoids the DSM's request/response round trips), while the DSM
version needs no explicit communication code — the paper's programmability
argument, with its measured cost.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.mp import gauss_seidel_mp_worker, run_mp
from repro.util.tables import Table


def _cfg(p=6):
    return ClusterConfig(platform=get_platform("sunos"), n_processors=p)


def test_mp_vs_dsm_gauss_seidel(benchmark):
    n, sweeps = 500, 10

    def run():
        dse = run_parallel(_cfg(), gauss_seidel_worker, args=(n, sweeps))
        mp = run_mp(_cfg(), gauss_seidel_mp_worker, args=(n, sweeps))
        return dse, mp

    dse, mp = benchmark.pedantic(run, rounds=1, iterations=1)
    # Identical numerics first: both models must produce the same solution.
    assert np.allclose(dse.returns[0]["x"], mp.returns[0]["x"], atol=1e-12)

    e_dse = max(r["t1"] - r["t0"] for r in dse.returns.values())
    e_mp = max(r["t1"] - r["t0"] for r in mp.returns.values())
    t = Table(
        ["model", "elapsed_s", "messages"],
        title=f"Gauss-Seidel N={n}, {sweeps} sweeps, 6 processors",
    )
    t.add("DSE shared memory", e_dse, dse.stats["msgs_sent"])
    t.add("message passing", e_mp, mp.stats["msgs_sent"])
    print("\n" + t.render())
    # Both within 3x of each other: the DSM tax is real but bounded.
    assert 1 / 3 < e_dse / e_mp < 3


def test_mp_and_dsm_scale_similarly(benchmark):
    n, sweeps = 700, 5

    def run():
        out = {}
        for p in (1, 6):
            kw = {"n_machines": 1} if p == 1 else {}
            cfg = ClusterConfig(
                platform=get_platform("sunos"), n_processors=p, **kw
            )
            dse = run_parallel(cfg, gauss_seidel_worker, args=(n, sweeps, 7, False))
            mp = run_mp(cfg, gauss_seidel_mp_worker, args=(n, sweeps, 7, False))
            out[p] = (
                max(r["t1"] - r["t0"] for r in dse.returns.values()),
                max(r["t1"] - r["t0"] for r in mp.returns.values()),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    s_dse = out[1][0] / out[6][0]
    s_mp = out[1][1] / out[6][1]
    print(f"\nspeed-up at 6 processors: DSE {s_dse:.2f}x, MP {s_mp:.2f}x")
    assert s_dse > 2 and s_mp > 2
