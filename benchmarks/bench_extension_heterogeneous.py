"""Extension bench: heterogeneous clusters (the paper's portability goal
taken literally — mixed UNIX boxes in one DSE system).

Runs the same Othello search on a homogeneous SparcStation cluster, a
homogeneous Pentium-II cluster, and a 50/50 mix.  The mixed cluster must
land between the extremes, and a barrier-coupled workload must be paced by
its slowest members.
"""

import pytest

from repro.apps import othello_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import LINUX_PCAT, SUNOS_SPARCSTATION
from repro.util.tables import Table


def _elapsed(res):
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def test_mixed_cluster_between_extremes(benchmark):
    depth, p = 7, 6

    def run():
        out = {}
        out["sparc"] = run_parallel(
            ClusterConfig(platform=SUNOS_SPARCSTATION, n_processors=p),
            othello_worker, args=(depth,),
        )
        out["pii"] = run_parallel(
            ClusterConfig(platform=LINUX_PCAT, n_processors=p),
            othello_worker, args=(depth,),
        )
        out["mixed"] = run_parallel(
            ClusterConfig(
                platform=SUNOS_SPARCSTATION,
                n_processors=p,
                platforms=(SUNOS_SPARCSTATION, LINUX_PCAT),
            ),
            othello_worker, args=(depth,),
        )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["cluster", "elapsed_s"], title=f"Othello depth {depth}, {p} processors")
    for name, res in out.items():
        assert res.returns[0]["value"] == res.returns[0]["expected_value"]
        t.add(name, _elapsed(res))
    print("\n" + t.render())
    assert _elapsed(out["pii"]) < _elapsed(out["mixed"]) < _elapsed(out["sparc"])


def test_dynamic_pool_absorbs_heterogeneity(benchmark):
    """With the dynamic job queue, fast nodes simply take more jobs: the
    mixed cluster lands much closer to the fast one than a static split
    would allow (work-stealing-style load balance across speeds)."""
    depth, p = 8, 4

    def run():
        pii = run_parallel(
            ClusterConfig(platform=LINUX_PCAT, n_processors=p),
            othello_worker, args=(depth,),
        )
        mixed = run_parallel(
            ClusterConfig(
                platform=LINUX_PCAT,
                n_processors=p,
                platforms=(LINUX_PCAT, LINUX_PCAT, LINUX_PCAT, SUNOS_SPARCSTATION),
            ),
            othello_worker, args=(depth,),
        )
        return pii, mixed

    pii, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    e_pii, e_mixed = _elapsed(pii), _elapsed(mixed)
    print(f"\nall-PII {e_pii:.3f}s vs 3xPII+1xSparc {e_mixed:.3f}s")
    # One slow node out of four: far less than the 4x a lock-step split
    # would cost (the slow node is ~4x slower on this workload).
    assert e_mixed < 2.0 * e_pii
