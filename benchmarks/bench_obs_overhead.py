"""Observability overhead: wall-clock cost of causal tracing.

Runs the Knight's-Tour workload (the message-heaviest figure driver) with
``obs_trace`` off and on and reports the wall-clock ratio.  The contract
is:

* **disabled** — instrumentation is a single ``enabled`` flag test per
  hook site, so the disabled-mode cost must be in the noise (the guard
  micro-benchmark below measures it directly);
* **enabled** — span recording allocates one small object per hook, so a
  traced run costs real wall-clock (reported, loosely bounded) but
  *never* changes simulated time.
"""

import time

from repro.apps.knights_tour import knights_tour_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.obs import SpanRecorder

N_JOBS = 16
REPEATS = 3


def _run(obs_trace: bool) -> float:
    """Best-of-N wall-clock seconds for one traced/untraced run."""
    best = float("inf")
    elapsed_sim = None
    for _ in range(REPEATS):
        config = ClusterConfig(
            platform=get_platform("sunos"), n_processors=4, obs_trace=obs_trace
        )
        start = time.perf_counter()
        result = run_parallel(config, knights_tour_worker, args=(N_JOBS,))
        best = min(best, time.perf_counter() - start)
        if elapsed_sim is None:
            elapsed_sim = result.elapsed
        else:
            # Tracing on/off and run-to-run: simulated time is bit-identical.
            assert result.elapsed == elapsed_sim
    return best


def test_tracing_wall_clock_overhead():
    untraced = _run(obs_trace=False)
    traced = _run(obs_trace=True)
    ratio = traced / untraced
    print(f"\nknights-tour n_jobs={N_JOBS} p=4: "
          f"untraced {untraced:.3f}s, traced {traced:.3f}s, ratio {ratio:.2f}x")
    # Loose bound: span recording is one object per hook, not a rewrite of
    # the hot path.  (Wall-clock on shared CI is noisy; 2x is generous.)
    assert ratio < 2.0, f"tracing overhead ratio {ratio:.2f}x is out of line"


def test_disabled_guard_is_cheap():
    """The disabled-mode hook is `flag and ctx is not None` — measure it."""
    recorder = SpanRecorder(enabled=False)
    trace = None
    n = 1_000_000

    start = time.perf_counter()
    for _ in range(n):
        if recorder.enabled and trace is not None:
            raise AssertionError("unreachable")
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        pass
    empty = time.perf_counter() - start

    per_hook_ns = (guarded - empty) / n * 1e9
    print(f"\ndisabled-mode guard: {per_hook_ns:.1f} ns per hook site")
    # A flag test + identity check must stay within interpreter noise.
    # Runs happen on shared machines, so the bound is deliberately loose
    # (~2% of a typical 10 us simulated-event turnaround would be 200 ns).
    assert per_hook_ns < 500, f"guard costs {per_hook_ns:.0f} ns — not zero-cost"
