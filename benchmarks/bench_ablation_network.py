"""Ablation: shared-bus CSMA/CD Ethernet vs a switched LAN.

The paper blames part of the Knight's-Tour degradation at high job counts
on "the bus type Ethernet where occurrence of packet collision increases
when communication frequency between nodes increases".  Swapping the
fabric for a collision-free switch isolates that effect: the switched
cluster must run the message-heavy configuration faster and report zero
collisions.
"""

import pytest

from repro.apps import knights_tour_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.network import FabricConfig
from repro.util.tables import Table


def _run(kind, n_jobs=512, p=8):
    config = ClusterConfig(
        platform=get_platform("sunos"),
        n_processors=p,
        fabric=FabricConfig(kind=kind),
    )
    return run_parallel(config, knights_tour_worker, args=(n_jobs,))


def _elapsed(res):
    return max(r["t1"] - r["t0"] for r in res.returns.values())


def test_switch_removes_collisions(benchmark):
    def run():
        return _run("ethernet"), _run("switch")

    bus, switch = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bus.returns[0]["tours"] == switch.returns[0]["tours"] == 304
    t = Table(
        ["fabric", "elapsed_s", "collisions", "frames"],
        title="Knight's Tour, 512 jobs, 8 processors",
    )
    t.add("shared bus", _elapsed(bus), bus.stats["net.collisions"], bus.stats["net.frames_sent"])
    t.add("switch", _elapsed(switch), switch.stats["net.collisions"], switch.stats["net.frames_sent"])
    print("\n" + t.render())
    assert bus.stats["net.collisions"] > 0
    assert switch.stats["net.collisions"] == 0
    assert _elapsed(switch) < _elapsed(bus)


def test_collisions_grow_with_processors(benchmark):
    def run():
        return [_run("ethernet", n_jobs=512, p=p) for p in (2, 6, 12)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    collisions = [r.stats["net.collisions"] for r in results]
    t = Table(["processors", "collisions"], title="bus collisions vs processors")
    for p, c in zip((2, 6, 12), collisions):
        t.add(p, c)
    print("\n" + t.render())
    assert collisions[0] < collisions[-1]
