"""Engine benchmarks: the raw throughput of the simulation substrate.

Unlike the figure benches (which measure *simulated* time), these measure
real wall-clock throughput of the discrete-event engine — the number the
next person extending the simulator cares about.
"""

import pytest

from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.network import EthernetBus, EthernetFrame
from repro.osmodel import ProcessorSharingCPU
from repro.sim import RandomStreams, Simulator


def test_engine_timeout_throughput(benchmark):
    """Bare event-loop speed: a chain of timeouts."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(20_000):
                yield sim.timeout(0.001)

        sim.process(ticker())
        sim.run_all()
        return sim.events_processed

    events = benchmark(run)
    assert events >= 20_000


def test_processor_sharing_churn(benchmark):
    """PS CPU with constant arrivals/departures (the scheduler hot path)."""

    def run():
        sim = Simulator()
        cpu = ProcessorSharingCPU(sim, context_switch=25e-6)

        def burst(duration):
            yield cpu.execute(duration)

        for i in range(2_000):
            sim.process(burst(0.001 + (i % 7) * 0.0003))
        sim.run_all()
        return cpu.stats.counter("completed").value

    completed = benchmark(run)
    assert completed == 2_000


def test_bus_contention_throughput(benchmark):
    """CSMA/CD arbitration under 8-station contention."""

    def run():
        sim = Simulator()
        bus = EthernetBus(sim, RandomStreams(3))
        for i in range(8):
            bus.attach(i, lambda f: None)

        def chatter(src):
            for k in range(100):
                yield from bus.send(
                    EthernetFrame(src=src, dst=(src + 1) % 8, payload=k, payload_bytes=128)
                )

        for i in range(8):
            sim.process(chatter(i))
        sim.run_all()
        return bus.stats.counter("frames_sent").value

    frames = benchmark(run)
    assert frames == 800


def test_full_stack_run_wall_clock(benchmark):
    """A representative full-stack parallel run (cluster build + app +
    teardown): the end-to-end cost of one experiment point."""

    def worker(api):
        yield from api.gm_write(api.rank * 8, [1.0] * 8)
        yield from api.barrier("a")
        yield from api.gm_read(0, 8 * api.size)
        yield from api.barrier("b")
        return True

    def run():
        res = run_parallel(
            ClusterConfig(platform=get_platform("sunos"), n_processors=6), worker
        )
        return res.sim_events

    events = benchmark(run)
    assert events > 100
