#!/usr/bin/env python
"""Quickstart: a tiny SPMD program on a simulated DSE cluster.

Every rank writes a value into the distributed shared memory, the ranks
synchronise at a barrier, and each one reads the whole vector back — the
cluster behaves like one shared-memory machine (the single-system image).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util import fmt_time


def worker(api):
    """One DSE process (a generator: every DSE call uses `yield from`)."""
    # Each rank contributes one element of a shared vector at address 0.
    yield from api.gm_write(api.rank, [float(api.rank + 1) ** 2])

    # Wait for everyone, then read the whole shared vector.
    yield from api.barrier("contributions")
    vector = yield from api.gm_read(0, api.size)

    # A lock-protected read-modify-write of a shared accumulator.
    yield from api.lock("total")
    total = yield from api.gm_read_scalar(100)
    yield from api.gm_write_scalar(100, total + float(vector.sum()))
    yield from api.unlock("total")

    yield from api.barrier("done")
    return float((yield from api.gm_read_scalar(100)))


def main():
    config = ClusterConfig(
        platform=get_platform("linux"),  # PII-266 / Linux 2.0 (Table 1)
        n_processors=4,
        n_machines=6,
    )
    result = run_parallel(config, worker)

    expected = sum((r + 1) ** 2 for r in range(4)) * 4
    print("per-rank results:", result.returns)
    assert all(v == expected for v in result.returns.values())
    print(f"simulated elapsed time: {fmt_time(result.elapsed)}")
    print(f"messages on the wire:   {result.stats['msgs_sent']:.0f}")
    print(f"Ethernet collisions:    {result.stats['net.collisions']:.0f}")
    print("OK — the cluster behaved as one shared-memory system.")


if __name__ == "__main__":
    main()
