#!/usr/bin/env python
"""Parallel DCT-II image compression (paper §4.2).

Compresses a synthetic image on the simulated cluster, comparing block
sizes — the granularity trade-off behind the paper's Figures 10-15 —
and reports the reconstruction quality (PSNR) of the 25%-kept transform.

Run:  python examples/image_compression.py
"""

import numpy as np

from repro.apps import dct2_worker, idct2_block, make_image
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util import Table, fmt_time


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    mse = float(np.mean((original - reconstructed) ** 2))
    if mse == 0:
        return float("inf")
    return 10 * np.log10(255.0**2 / mse)


def reconstruct(coeffs: np.ndarray, block: int) -> np.ndarray:
    out = np.empty_like(coeffs)
    size = coeffs.shape[0]
    for by in range(0, size, block):
        for bx in range(0, size, block):
            out[by : by + block, bx : bx + block] = idct2_block(
                coeffs[by : by + block, bx : bx + block]
            )
    return out


def main():
    size, keep, procs = 64, 0.25, 6
    platform = get_platform("sunos")
    image = make_image(size)
    print(
        f"Compressing a {size}x{size} image (keep {keep:.0%}) on "
        f"{procs} processors, {platform.name}\n"
    )

    table = Table(["block", "seq time", "par time", "speed-up", "PSNR (dB)"])
    for block in (2, 4, 8):
        seq = run_parallel(
            ClusterConfig(platform=platform, n_processors=1, n_machines=1),
            dct2_worker,
            args=(size, block, keep),
        )
        par = run_parallel(
            ClusterConfig(platform=platform, n_processors=procs),
            dct2_worker,
            args=(size, block, keep),
        )
        e_seq = max(r["t1"] - r["t0"] for r in seq.returns.values())
        e_par = max(r["t1"] - r["t0"] for r in par.returns.values())
        quality = psnr(image, reconstruct(par.returns[0]["coeffs"], block))
        table.add(
            f"{block}x{block}",
            fmt_time(e_seq),
            fmt_time(e_par),
            f"{e_seq / e_par:.2f}x",
            f"{quality:.1f}",
        )
    print(table.render())
    print(
        "\n2x2 blocks carry almost no computation per message: communication"
        "\nfrequency eats the parallelism (the paper's granularity effect)."
    )


if __name__ == "__main__":
    main()
