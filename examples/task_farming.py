#!/usr/bin/env python
"""Task farming, transparent remote execution, and message timelines.

Three library features beyond the paper's four applications:

* ``farm`` / ``farm_dynamic`` — PVM-style parallel map over the kernels;
* ``remote_run`` — run a task wherever the SSI layer decides (least-loaded
  node), result returned transparently;
* message tracing — an ASCII per-kernel activity timeline of the run.

Run:  python examples/task_farming.py
"""

from repro.dse import Cluster, ClusterConfig, ParallelAPI, farm_dynamic
from repro.experiments import message_census, render_timeline
from repro.hardware import get_platform
from repro.ssi import remote_run
from repro.util import fmt_time


def simulate_option_price(api, strike):
    """A toy compute task: fixed-work 'Monte Carlo' pricing of one strike."""
    yield from api.compute_seconds(0.004)
    return round(100.0 / strike, 4)


def main():
    config = ClusterConfig(
        platform=get_platform("aix"), n_processors=5, n_machines=5, trace=True
    )
    cluster = Cluster(config)
    out = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        start = api.now

        # 1. Farm 20 independent pricing tasks across the 5 kernels,
        #    at most 2 in flight per kernel.
        strikes = [80 + 2 * i for i in range(20)]
        prices = yield from farm_dynamic(api, simulate_option_price, strikes)
        out["prices"] = dict(zip(strikes, prices))

        # 2. Run one follow-up task wherever the cluster is idlest.
        value, = [
            (yield from remote_run(api, simulate_option_price, (100,)))
        ]
        out["followup"] = value
        out["elapsed"] = api.now - start
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()

    print(f"20 farmed tasks + 1 remote task in {fmt_time(out['elapsed'])} "
          f"(vs {fmt_time(21 * 0.004)} sequential)\n")
    print("sample results:", dict(list(out["prices"].items())[:4]), "…\n")
    print(render_timeline(cluster.tracer, width=60))
    print()
    print(message_census(cluster.tracer))


if __name__ == "__main__":
    main()
