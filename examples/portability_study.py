#!/usr/bin/env python
"""The paper's headline claim: the same parallel program, unchanged, on
three UNIX platforms — with the same qualitative behaviour.

Runs the Othello depth-6 search on SunOS/SparcStation, AIX/RS-6000 and
Linux/Pentium-II clusters and prints the execution-time and speed-up rows
side by side.  Absolute times differ (the machines differ); the *shape*
— speed-up rising with processors, then flattening past 6 — repeats on
every platform, which is the portability result.

Run:  python examples/portability_study.py
"""

from repro.apps import othello_worker
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform, platform_names
from repro.util import Table, fmt_time

PROCS = (1, 2, 4, 6)
DEPTH = 6


def measure(platform_key):
    platform = get_platform(platform_key)
    times = []
    for p in PROCS:
        config = ClusterConfig(
            platform=platform, n_processors=p, n_machines=min(p, 6)
        )
        res = run_parallel(config, othello_worker, args=(DEPTH,))
        assert res.returns[0]["value"] == res.returns[0]["expected_value"]
        times.append(max(r["t1"] - r["t0"] for r in res.returns.values()))
    return platform.name, times


def main():
    print(f"Othello depth-{DEPTH} search, identical program on three platforms\n")
    table = Table(
        ["platform"] + [f"T({p})" for p in PROCS] + [f"S({p})" for p in PROCS[1:]]
    )
    for key in platform_names():
        name, times = measure(key)
        row = [name] + [fmt_time(t) for t in times]
        row += [f"{times[0] / t:.2f}x" for t in times[1:]]
        table.add(*row)
    print(table.render())
    print(
        "\nSame program text, same results, same speed-up pattern — the"
        "\nportability and architecture-independence the DSE re-organisation"
        "\nwas built for."
    )


if __name__ == "__main__":
    main()
