#!/usr/bin/env python
"""Solving simultaneous linear equations on the cluster (paper §4.1).

Builds a diagonally dominant N-dimensional system, solves it with the
DSE-parallel block Gauss-Seidel at several processor counts, and reports
execution time, speed-up, and solution quality — the experiment behind
the paper's Figures 4-9, as a user-facing script.

Run:  python examples/equation_solver.py [N]
"""

import sys

import numpy as np

from repro.apps import gauss_seidel_worker, make_system
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util import Table, fmt_time


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    sweeps = 10
    platform = get_platform("sunos")
    print(f"Solving a {n}-dimensional system on {platform.name}, {sweeps} sweeps\n")

    a, b = make_system(n)
    truth = np.linalg.solve(a, b)

    table = Table(["processors", "exec time", "speed-up", "max error"])
    base = None
    for p in (1, 2, 4, 6, 8):
        config = ClusterConfig(
            platform=platform, n_processors=p, n_machines=min(p, 6)
        )
        result = run_parallel(config, gauss_seidel_worker, args=(n, sweeps))
        elapsed = max(r["t1"] - r["t0"] for r in result.returns.values())
        base = base or elapsed
        err = float(np.max(np.abs(result.returns[0]["x"] - truth)))
        table.add(p, fmt_time(elapsed), f"{base / elapsed:.2f}x", f"{err:.2e}")
    print(table.render())
    print(
        "\nNote the paper's two regimes: speed-up grows while computation"
        "\ndominates, then collapses once kernels double up on machines."
    )


if __name__ == "__main__":
    main()
