#!/usr/bin/env python
"""Parallel game-tree search: Othello and the Knight's Tour (paper §4.3-4.4).

Shows both search workloads on the cluster:

* Othello — a fixed midgame position searched at increasing depths; the
  cluster splits the first two plies into jobs and recombines minimax
  values.  Deep searches parallelise; shallow ones drown in messages.
* Knight's Tour — counting all 304 open tours from the corner of a 5x5
  board, split into a configurable number of subtree jobs.

Run:  python examples/game_search.py
"""

from repro.apps import (
    best_move_seq,
    count_tours_seq,
    knights_tour_worker,
    midgame_board,
    othello_worker,
)
from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform
from repro.util import Table, fmt_time

PLATFORM = get_platform("sunos")


def othello_demo():
    print("== Othello: root-split minimax on 6 processors ==\n")
    table = Table(["depth", "best move", "value", "seq time", "par time", "speed-up"])
    for depth in (2, 4, 6):
        seq = run_parallel(
            ClusterConfig(platform=PLATFORM, n_processors=1, n_machines=1),
            othello_worker,
            args=(depth,),
        )
        par = run_parallel(
            ClusterConfig(platform=PLATFORM, n_processors=6),
            othello_worker,
            args=(depth,),
        )
        e_seq = max(r["t1"] - r["t0"] for r in seq.returns.values())
        e_par = max(r["t1"] - r["t0"] for r in par.returns.values())
        out = par.returns[0]
        assert out["value"] == out["expected_value"], "parallel != sequential minimax"
        move = out["best_move"]
        coord = f"{'abcdefgh'[move % 8]}{move // 8 + 1}"
        table.add(depth, coord, out["value"], fmt_time(e_seq), fmt_time(e_par),
                  f"{e_seq / e_par:.2f}x")
    print(table.render())
    check_move, check_value, _ = best_move_seq(midgame_board(), 1, 6)
    print(f"\n(sequential depth-6 reference agrees: value {check_value})\n")


def knights_tour_demo():
    print("== Knight's Tour: 5x5 board, all tours from the corner ==\n")
    tours, nodes = count_tours_seq()
    print(f"sequential search: {tours} tours, {nodes} nodes\n")
    table = Table(["jobs", "par time (6 procs)", "tours found"])
    for jobs in (8, 32, 512):
        par = run_parallel(
            ClusterConfig(platform=PLATFORM, n_processors=6),
            knights_tour_worker,
            args=(jobs,),
        )
        out = par.returns[0]
        assert out["tours"] == tours
        e_par = max(r["t1"] - r["t0"] for r in par.returns.values())
        table.add(out["n_jobs_actual"], fmt_time(e_par), out["tours"])
    print(table.render())
    print(
        "\nA middling division is fastest: few jobs cannot fill 6 processors,"
        "\nmany jobs pay a message (and bus collision) per tiny subtree."
    )


if __name__ == "__main__":
    othello_demo()
    knights_tour_demo()
