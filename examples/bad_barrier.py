#!/usr/bin/env python
"""A barrier bug, caught: participant counts that can never be met.

Every rank arrives at one barrier declared for ``size + 1`` parties.
The (size+1)-th participant does not exist, so the program hangs until
the simulator's event queue drains — the classic lost wake-up.  With
``sanitize=True`` the deadlock detector flags the impossible count
*online*, at the first arrival, and the drain-time report names the
barrier, the declared count, and exactly who did arrive.

Run:  python examples/bad_barrier.py
"""

from repro.dse import ClusterConfig, run_parallel
from repro.errors import DSEError
from repro.hardware import get_platform

RANKS = 3


def bad_worker(api):
    """BUG: every rank waits for size+1 parties; nobody else is coming."""
    yield from api.gm_write_scalar(api.rank, 1.0)
    yield from api.barrier("phase", api.size + 1)  # one party too many
    return 0.0


def main():
    config = ClusterConfig(
        platform=get_platform("linux"),
        n_processors=RANKS,
        sanitize=True,
    )
    try:
        run_parallel(config, bad_worker)
    except DSEError as exc:
        report = exc.cluster.sanitizer.report
        print(f"run hung, as expected: {exc}".splitlines()[0])
        print(report.format())
        if any(f.kind == "impossible" for f in report.barrier_faults):
            print("OK — the deadlock detector flagged the impossible barrier.")
            return 0
        print("FAILED: the impossible participant count was not flagged")
        return 1
    print("FAILED: the run completed; it should have hung at the barrier")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
