#!/usr/bin/env python
"""A data race, caught: the textbook lost-update on a shared counter.

Every rank read-modify-writes one global-memory word with no lock.  The
run "works" — it completes, it returns numbers — but the final sum is
usually short, and which increments survive depends on message timing.
Running the same program with ``ClusterConfig(sanitize=True)`` makes the
race detector flag every unordered read/write pair, with the source
lines of both sides.

The locked twin runs afterwards: same counter, mutex-guarded — the
sanitizer stays silent and the count is exact.

Run:  python examples/racy_sum.py
"""

from repro.dse import ClusterConfig, run_parallel
from repro.hardware import get_platform

COUNTER = 0
INCREMENTS = 4
RANKS = 4


def racy_worker(api):
    """BUG: unlocked read-modify-write of a shared counter."""
    for _ in range(INCREMENTS):
        value = yield from api.gm_read_scalar(COUNTER)  # racy read
        yield from api.gm_write_scalar(COUNTER, value + 1.0)  # racy write
    yield from api.barrier("done")
    return float((yield from api.gm_read_scalar(COUNTER)))


def locked_worker(api):
    """The fix: the same counter behind a DSE mutex."""
    for _ in range(INCREMENTS):
        yield from api.lock("counter")
        value = yield from api.gm_read_scalar(COUNTER)
        yield from api.gm_write_scalar(COUNTER, value + 1.0)
        yield from api.unlock("counter")
    yield from api.barrier("done")
    return float((yield from api.gm_read_scalar(COUNTER)))


def sanitized(worker):
    config = ClusterConfig(
        platform=get_platform("linux"),
        n_processors=RANKS,
        sanitize=True,  # race + deadlock detection on
    )
    result = run_parallel(config, worker)
    return result, result.cluster.sanitizer.report


def main():
    expected = float(RANKS * INCREMENTS)

    result, report = sanitized(racy_worker)
    finals = sorted(set(result.returns.values()))
    print(f"racy run finished: counter = {finals}, expected {expected}")
    print(report.format())
    if not report.races:
        print("FAILED: the race detector missed the unlocked counter")
        return 1

    result, report = sanitized(locked_worker)
    finals = sorted(set(result.returns.values()))
    print(f"locked run finished: counter = {finals}, expected {expected}")
    print(report.format())
    if not report.clean or finals != [expected]:
        print("FAILED: the locked twin should be clean and exact")
        return 1

    print("OK — the sanitizer flagged the race and cleared the fix.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
