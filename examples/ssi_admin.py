#!/usr/bin/env python
"""The single-system image in action: one process space, one file
namespace, one management view.

Builds an 8-kernel virtual cluster on 6 machines, runs a small workload
that writes through the cluster-wide file system from one node and reads
it from every other, then prints the SSI management views (`cluster ps`,
`cluster top`, `cluster netstat`) — the cluster administered as if it
were a single machine.

Run:  python examples/ssi_admin.py
"""

from repro.dse import Cluster, ClusterConfig, ParallelAPI
from repro.hardware import get_platform
from repro.ssi import GlobalNamespace, KVService, SSIFileSystem, SSIView, node_info


def worker(api):
    fs = SSIFileSystem(api)
    # Every node logs into ONE file, through one namespace.
    yield from api.lock("motd")
    yield from fs.append("/var/log/boot.log", f"rank {api.rank} on {api.hostname}\n")
    yield from api.unlock("motd")
    yield from api.barrier("logged")
    log = yield from fs.read("/var/log/boot.log")
    # Ask a *remote* node for its status without knowing where it is.
    info = yield from node_info(api, (api.rank + 1) % api.size)
    yield from api.barrier("done")
    return {"log_lines": len(log.splitlines()), "peer": info["hostname"]}


def main():
    config = ClusterConfig(
        platform=get_platform("aix"), n_processors=8, n_machines=6
    )
    cluster = Cluster(config)
    KVService(cluster.kernel(0))  # the namespace server
    view = SSIView(cluster)
    results = {}

    def driver():
        api = ParallelAPI(cluster.kernel(0), 0)
        handles = yield from api.spawn_workers(worker)
        results[0] = yield from worker(api)
        results.update((yield from api.wait_workers(handles)))
        yield from cluster.shutdown_from(0)

    cluster.sim.process(driver())
    cluster.sim.run_all()

    print(view.uname(), "\n")
    assert all(r["log_lines"] == 8 for r in results.values())
    print("every node saw all 8 log lines through the single namespace\n")
    print(view.ps(), "\n")
    print(view.top(), "\n")
    print(view.netstat(), "\n")
    ns = GlobalNamespace(cluster)
    row = ns.find("dse-k5")
    print(f"cluster-wide pid of kernel 5's UNIX process: {row.gpid} on {row.hostname}")


if __name__ == "__main__":
    main()
