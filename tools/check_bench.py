#!/usr/bin/env python
"""Benchmark gates: record and compare the committed perf trajectories.

Three suites, selected with ``--suite``:

* ``engine`` (default) — wall-clock measurements of the canonical engine
  scenarios (:mod:`repro.perf.benches`), committed in ``BENCH_engine.json``.
  With ``--cluster-scale`` it also runs the sharded-vs-single cluster
  scenarios (:mod:`repro.perf.clusterbench`): simulated results must be
  byte-identical between ``--shards 1`` and sharded execution, and the
  largest scale scenario must show ``--require-shard-speedup`` (default
  2x) wall-clock speed-up whenever the host has at least as many cores
  as shards (loud SKIP otherwise).
* ``transport`` — the transport x burst-loss goodput matrix
  (:mod:`repro.perf.netbench`), committed in ``BENCH_transport.json``.
  Every field is *simulated* and therefore machine-independent: CI
  compares the whole matrix exactly, and ``--require-ratio`` (default 10)
  gates the selective-repeat speed-up over stop-and-wait at the canonical
  burst-loss point.
* ``traffic`` — the dispatch-policy x load response-time matrix
  (:mod:`repro.traffic.bench`), committed in ``BENCH_traffic.json``.
  Also all-simulated/exact; additionally gates the PS request-cloning
  report's orderings (clone-2 beats random on the heavy tail, loses on
  deterministic service) and the simulated-vs-analytic error within
  ``--tolerance`` of the closed forms.

The engine suite has three modes:

record
    ``python tools/check_bench.py --record --label "post-PR5 fast paths"``
    appends a fresh measurement to the trajectory.

compare (default)
    Runs the scenarios fresh and compares against the *latest* committed
    entry: the deterministic fields (simulated clock, events processed,
    events cancelled) must match **exactly** — a mismatch means the engine's
    behaviour changed, not just its speed — and wall-clock must not regress
    by more than ``--tolerance`` (default 15%).  Wall-clock baselines are
    machine-dependent; on foreign hardware (CI) pass a generous tolerance
    and rely on the exact deterministic-field comparison, which is
    machine-independent.

trajectory
    ``--trajectory`` prints the committed history and the first->last
    speed-up per bench; ``--require-speedup X`` additionally gates the
    micro-benches at >= X (the PR-5 acceptance bar is 1.3).

Exit status is non-zero on any regression/mismatch.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.perf.benches import BENCHES, MICRO_BENCHES, time_bench  # noqa: E402
from repro.perf.clusterbench import CLUSTER_SCENARIOS, run_cluster_bench  # noqa: E402
from repro.perf.netbench import matrix_ratios, run_matrix  # noqa: E402

DEFAULT_BASELINE = REPO / "BENCH_engine.json"
TRANSPORT_BASELINE = REPO / "BENCH_transport.json"
TRAFFIC_BASELINE = REPO / "BENCH_traffic.json"

#: the canonical gate points for --suite transport (loss point 0.02)
_GATE_KEYS = ("sr@0.02", "dual@0.02")

#: deterministic outcome fields compared exactly between runs; the
#: cluster-scale scenarios add msgs + the sharded-vs-single identity bit
#: (absent fields compare as None == None for the micro benches)
_EXACT_FIELDS = ("sim_now", "events", "cancelled", "msgs", "identical")


def measure(repeats: int) -> dict:
    """Time every scenario; returns name -> {wall, sim_now, events, ...}."""
    results = {}
    for name in BENCHES:
        reps = repeats if name in MICRO_BENCHES else max(2, repeats // 2)
        wall, outcome = time_bench(name, repeats=reps)
        results[name] = {"wall": wall, **outcome}
        print(f"  {name:>16}: {wall * 1000:8.2f} ms  "
              f"(events={outcome['events']}, cancelled={outcome['cancelled']})")
    return results


def measure_cluster(smoke: bool) -> dict:
    """Run the sharded-vs-single cluster scenarios (see repro.perf.clusterbench).

    Smoke mode skips the 256-node point (the full run takes minutes);
    every scenario still runs both executions and checks byte-identity.
    """
    results = {}
    for name in CLUSTER_SCENARIOS:
        if smoke and name == "cluster_scale_256":
            print(f"  {name:>16}: skipped (--smoke)")
            continue
        outcome = run_cluster_bench(name)
        results[name] = outcome
        ident = "identical" if outcome["identical"] else "DIVERGED"
        print(f"  {name:>16}: single {outcome['wall_single'] * 1000:8.0f} ms, "
              f"sharded({outcome['shards']}) {outcome['wall'] * 1000:8.0f} ms "
              f"-> {outcome['speedup']:.2f}x on {outcome['cpus']} cpu(s), "
              f"results {ident}")
    return results


def shard_speedup_gate(fresh: dict, require: float) -> int:
    """Gate sharded-vs-single speed-up at the largest scale scenario.

    The determinism bit is gated unconditionally for every cluster
    scenario.  The wall-clock bar only applies when the host has at least
    as many cores as shards — on fewer cores the process backend cannot
    beat serial execution and the gate SKIPs loudly instead of measuring
    the CI box rather than the engine.
    """
    failures = 0
    cluster = {n: r for n, r in fresh.items() if "identical" in r}
    if not cluster:
        return 0
    print("\nsharded execution gates:")
    for name, outcome in cluster.items():
        ok = bool(outcome["identical"])
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}: sharded results "
              f"byte-identical to single-loop")
        failures += 0 if ok else 1
    scales = {n: r for n, r in cluster.items() if r.get("kind") == "scale"}
    if scales:
        name, largest = max(scales.items(), key=lambda kv: kv[1]["nodes"])
        cpus, shards = largest["cpus"], largest["shards"]
        if cpus < shards:
            print(f"  [SKIP] {name}: >= {require:g}x wall-clock speed-up "
                  f"(host has {cpus} cpu(s) for {shards} shards — "
                  f"nothing to parallelise on; measured {largest['speedup']:.2f}x)")
        else:
            ok = largest["speedup"] >= require
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}: "
                  f"{largest['speedup']:.2f}x sharded-vs-single wall-clock "
                  f"(require >= {require:g}x on {cpus} cpu(s))")
            failures += 0 if ok else 1
    return failures


def measure_transport() -> dict:
    """Run the deterministic transport x loss matrix; print a summary."""
    results = run_matrix()
    ratios = matrix_ratios(results)
    for key, outcome in results.items():
        ratio = ratios.get(key)
        extra = f"  ({ratio:g}x vs stop-and-wait)" if ratio is not None else ""
        status = "" if outcome["completed"] else "  DNF"
        print(f"  {key:>20}: goodput {outcome['goodput_mps']:10.1f} msg/s "
              f"over {outcome['sim_now']:.6f} s{extra}{status}")
    return {"results": results, "ratios": ratios}


def compare_transport(fresh: dict, base_entry: dict, require_ratio: float) -> int:
    """Exact comparison (everything simulated) + speed-up gate."""
    failures = 0
    base = base_entry["results"]
    print(f"\ncomparing against baseline entry {base_entry['label']!r}:")
    for key, cur in fresh["results"].items():
        ref = base.get(key)
        if ref is None:
            print(f"  {key:>20}: NEW (no baseline)")
            continue
        if cur != ref:
            diffs = {
                fld: (cur.get(fld), ref.get(fld))
                for fld in sorted(set(cur) | set(ref))
                if cur.get(fld) != ref.get(fld)
            }
            print(f"  {key:>20}: DETERMINISM MISMATCH {diffs}")
            failures += 1
        else:
            print(f"  {key:>20}: ok (exact)")
    for key in _GATE_KEYS:
        ratio = fresh["ratios"].get(key, 0.0)
        ok = ratio >= require_ratio
        print(f"  gate {key}: {ratio:g}x vs stop-and-wait "
              f"[{'PASS' if ok else 'FAIL'} >= {require_ratio:g}x]")
        failures += 0 if ok else 1
    return 1 if failures else 0


def load_trajectory(path: Path) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text())["trajectory"]


def save_trajectory(path: Path, trajectory: list, benches=None) -> None:
    payload = {
        "benches": list(BENCHES) if benches is None else list(benches),
        "trajectory": trajectory,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def compare(fresh: dict, base_entry: dict, tolerance: float) -> int:
    """0 if fresh matches the baseline entry; 1 on mismatch/regression."""
    failures = 0
    base = base_entry["results"]
    print(f"\ncomparing against baseline entry {base_entry['label']!r}:")
    for name, cur in fresh.items():
        ref = base.get(name)
        if ref is None:
            print(f"  {name:>16}: NEW (no baseline)")
            continue
        for fld in _EXACT_FIELDS:
            if cur.get(fld) != ref.get(fld):
                print(f"  {name:>16}: DETERMINISM MISMATCH {fld}: "
                      f"{cur.get(fld)!r} != baseline {ref.get(fld)!r}")
                failures += 1
        ratio = cur["wall"] / ref["wall"] if ref["wall"] else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> {1.0 + tolerance:.2f}x allowed)"
            failures += 1
        print(f"  {name:>16}: {cur['wall'] * 1000:8.2f} ms vs "
              f"{ref['wall'] * 1000:8.2f} ms baseline ({ratio:.2f}x) {verdict}")
    return 1 if failures else 0


def show_trajectory(trajectory: list, require_speedup: float | None) -> int:
    if len(trajectory) < 1:
        print("no committed trajectory entries")
        return 1
    for entry in trajectory:
        walls = "  ".join(
            f"{n}={r['wall'] * 1000:.2f}ms" for n, r in sorted(entry["results"].items())
        )
        print(f"{entry['label']:>28}: {walls}")
    if len(trajectory) < 2:
        return 0
    first, last = trajectory[0]["results"], trajectory[-1]["results"]
    failures = 0
    print("\nfirst -> last speed-up:")
    for name in BENCHES:
        if name not in first or name not in last:
            continue
        speedup = first[name]["wall"] / last[name]["wall"]
        gate = ""
        if require_speedup is not None and name in MICRO_BENCHES:
            ok = speedup >= require_speedup
            gate = f"  [{'PASS' if ok else 'FAIL'} >= {require_speedup:.2f}x]"
            failures += 0 if ok else 1
        print(f"  {name:>16}: {speedup:.2f}x{gate}")
    return 1 if failures else 0


def _transport_suite(args) -> int:
    """The transport x burst-loss matrix suite (exact, simulated)."""
    print("measuring transport x burst-loss matrix (simulated, exact):")
    fresh = measure_transport()
    trajectory = load_trajectory(args.baseline)
    if args.record:
        trajectory.append({
            "label": args.label,
            "python": platform.python_version(),
            "machine": platform.machine(),
            **fresh,
        })
        save_trajectory(args.baseline, trajectory,
                        benches=sorted(fresh["results"]))
        print(f"\nrecorded entry {args.label!r} ({len(trajectory)} total) "
              f"to {args.baseline}")
        return 0
    if not trajectory:
        print(f"no baseline at {args.baseline}; run with --record first",
              file=sys.stderr)
        return 2
    return compare_transport(fresh, trajectory[-1], args.require_ratio)


def _engine_suite(args) -> int:
    """The wall-clock engine scenario suite (record/compare/trajectory)."""
    trajectory = load_trajectory(args.baseline)
    if args.trajectory:
        return show_trajectory(trajectory, args.require_speedup)

    repeats = 2 if args.smoke else args.repeats
    print(f"measuring engine benches (best of {repeats}):")
    fresh = measure(repeats)
    if args.cluster_scale:
        print("measuring cluster-scale sharded-vs-single scenarios:")
        fresh.update(measure_cluster(args.smoke))

    if args.record:
        gate_failures = shard_speedup_gate(fresh, args.require_shard_speedup)
        if gate_failures:
            print(f"\nrefusing to record a baseline that fails "
                  f"{gate_failures} sharding gate(s)", file=sys.stderr)
            return 1
        trajectory.append({
            "label": args.label,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": fresh,
        })
        save_trajectory(args.baseline, trajectory)
        print(f"\nrecorded entry {args.label!r} ({len(trajectory)} total) "
              f"to {args.baseline}")
        return 0

    if not trajectory:
        print(f"no baseline at {args.baseline}; run with --record first",
              file=sys.stderr)
        return 2
    failures = compare(fresh, trajectory[-1], args.tolerance)
    failures += shard_speedup_gate(fresh, args.require_shard_speedup)
    return 1 if failures else 0


def _traffic_suite(args) -> int:
    """The policy x load traffic matrix: exact + report-ordering gates."""
    from repro.traffic.bench import check_gates, run_bench_matrix

    n_requests = 6_000 if args.smoke else 60_000
    print(f"measuring traffic policy x load matrix "
          f"({n_requests} requests/point, simulated, exact):")
    fresh = run_bench_matrix(n_requests=n_requests)
    for key, outcome in sorted(fresh.items()):
        analytic = outcome.get("analytic")
        extra = f"  (analytic {analytic:.4f})" if analytic is not None else ""
        print(f"  {key:>16}: mean {outcome['mean']:10.4f}  "
              f"p99 {outcome['p99']:10.4f}{extra}")

    failures = 0
    print("\nreport-reproduction gates:")
    for description, ok in check_gates(fresh, tolerance=args.tolerance):
        print(f"  [{'PASS' if ok else 'FAIL'}] {description}")
        failures += 0 if ok else 1

    trajectory = load_trajectory(args.baseline)
    if args.record:
        if failures:
            print(f"\nrefusing to record a baseline that fails "
                  f"{failures} gate(s)", file=sys.stderr)
            return 1
        trajectory.append({
            "label": args.label,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "n_requests": n_requests,
            "results": fresh,
        })
        save_trajectory(args.baseline, trajectory, benches=sorted(fresh))
        print(f"\nrecorded entry {args.label!r} ({len(trajectory)} total) "
              f"to {args.baseline}")
        return 0
    if not trajectory:
        print(f"no baseline at {args.baseline}; run with --record first",
              file=sys.stderr)
        return 2
    base_entry = trajectory[-1]
    base = base_entry["results"]
    print(f"\ncomparing against baseline entry {base_entry['label']!r}:")
    if base_entry.get("n_requests") != n_requests:
        print(f"  (baseline used {base_entry.get('n_requests')} requests/point, "
              f"this run {n_requests}: skipping the exact comparison)")
    else:
        for key, cur in sorted(fresh.items()):
            ref = base.get(key)
            if ref is None:
                print(f"  {key:>16}: NEW (no baseline)")
                continue
            if cur != ref:
                diffs = {
                    fld: (cur.get(fld), ref.get(fld))
                    for fld in sorted(set(cur) | set(ref))
                    if cur.get(fld) != ref.get(fld)
                }
                print(f"  {key:>16}: DETERMINISM MISMATCH {diffs}")
                failures += 1
            else:
                print(f"  {key:>16}: ok (exact)")
    return 1 if failures else 0


#: suite name -> (committed baseline file, runner); adding a suite is one
#: entry here — selection, default baseline, and dispatch all read it
SUITES = {
    "engine": (DEFAULT_BASELINE, _engine_suite),
    "transport": (TRANSPORT_BASELINE, _transport_suite),
    "traffic": (TRAFFIC_BASELINE, _traffic_suite),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="engine", metavar="SUITE",
                        help="which benchmark suite to run "
                             f"(one of: {', '.join(SUITES)}; default: engine)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="trajectory file (default: BENCH_<suite>.json)")
    parser.add_argument("--record", action="store_true",
                        help="append a fresh measurement instead of comparing")
    parser.add_argument("--label", default="unlabelled",
                        help="label for the recorded entry")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed wall-clock regression fraction (default 0.15)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repetitions per micro-bench (default 5)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode for CI: best-of-2 repetitions")
    parser.add_argument("--trajectory", action="store_true",
                        help="print the committed trajectory and speed-ups")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="with --trajectory: gate micro-bench first->last speed-up")
    parser.add_argument("--cluster-scale", action="store_true",
                        help="engine suite: also run the sharded-vs-single "
                             "cluster scenarios (repro.perf.clusterbench) and "
                             "gate determinism + speed-up")
    parser.add_argument("--require-shard-speedup", type=float, default=2.0,
                        help="with --cluster-scale: minimum sharded-vs-single "
                             "wall-clock ratio at the largest scale scenario "
                             "(skipped when cores < shards; default 2.0)")
    parser.add_argument("--require-ratio", type=float, default=10.0,
                        help="transport suite: minimum SR-vs-stop-and-wait "
                             "goodput ratio at the canonical loss point")
    args = parser.parse_args(argv)

    suite = SUITES.get(args.suite)
    if suite is None:
        print(
            f"unknown suite {args.suite!r}; known suites: "
            f"{', '.join(sorted(SUITES))}",
            file=sys.stderr,
        )
        return 2
    default_baseline, run = suite
    if args.baseline is None:
        args.baseline = default_baseline
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
