#!/usr/bin/env python3
"""Determinism lint for the simulator kernel (static analysis, stdlib ast).

The whole repository's value rests on one property: a run is a pure
function of its :class:`ClusterConfig` (seed included).  This lint
rejects the constructs that silently break that property:

    python tools/lint_repro.py [paths...]        # default: src/repro

Rules (all reported as ``path:line: [rule] message``):

* **wall-clock** — ``time.time()``, ``time.time_ns()``,
  ``time.monotonic()``, ``datetime.now()`` and friends inject host time
  into the simulation.  ``time.perf_counter`` stays allowed: benchmarks
  measure real wall duration, they never feed it back into simulated
  state.  Exception: inside ``repro/replay`` even ``perf_counter`` /
  ``perf_counter_ns`` are flagged — record/replay must be a pure function
  of the recording, so *any* host-clock read there is a divergence bug.
* **global-random** — module-level ``random.random()`` /
  ``np.random.rand()`` etc. draw from cross-run shared state; all
  randomness must flow through seeded generators
  (``random.Random(seed)``, ``numpy.random.default_rng(seed)``, the
  repo's ``RandomStreams``).
* **unsorted-set-iter** — iterating a ``set``/``frozenset`` (or ``dict``
  built from one) has hash-seed-dependent order; when that order feeds
  event scheduling or message emission, two identical runs diverge.
  Wrap the iterable in ``sorted(...)``.
* **bare-except** — ``except:`` swallows simulator invariant violations
  (including ``GeneratorExit`` in coroutines); name the exception.
* **unseeded-shuffle** — ``random.shuffle`` / ``random.choice`` /
  ``random.choices`` / ``random.sample`` (and the numpy equivalents) on
  the module-level RNG: reordering decisions are exactly the kind of
  nondeterminism that changes event schedules, so they get their own
  rule (and suppression name) rather than hiding inside global-random.
* **mutable-default-arg** — a ``[]`` / ``{}`` / ``{...}`` default is
  built once at import and shared by every call — state leaks across
  *runs* inside one host process, breaking run-to-run purity even with
  identical configs.  Default to ``None`` and construct inside.
* **process-isolation** — ``multiprocessing`` imports and
  ``os.getpid()`` / ``os.fork()`` are confined to the two sanctioned
  host-parallelism layers (``repro/shard`` and
  ``repro/experiments/parallel.py``).  Anywhere else, host process
  identity or topology leaking into model code is a determinism hazard:
  results would depend on how the run was executed, not on the config.

Cross-file **protocol wiring** checks (run against the repo as a whole;
reported with the same ``path:line: [rule] message`` shape):

* **unknown-msg-type** — every ``MsgType.X`` reference under
  ``src/repro`` must name a real enum member (a typo'd type silently
  never matches any dispatch arm).
* **unhandled-request** — every request-classified ``MsgType`` member
  (``*_req`` plus the declared one-way notifications) must be dispatched
  by ``dse/kernel.py`` or installed via ``register_service`` somewhere;
  an unhandled request is a guaranteed runtime ``DSEError``.
* **channel-pairing** — a request and its response must ride the same
  dual-channel lane: ``_DATA_CLASS`` must contain ``*_req``/``*_rsp``
  pairs together, or a retry repairs one direction while the other
  silently reorders.
* **unknown-stat-key** — every ``stats.counter("...")`` /
  ``stats.tally("...")`` literal must appear in the declared registry
  (:mod:`repro.sim.statreg`); a typo'd key creates a fresh zero counter
  and every reader of the intended key sees stale data.

Suppress a deliberate use with a ``# lint: allow-<rule>`` comment on the
offending line (e.g. ``# lint: allow-wall-clock``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: time-module attributes that read the host clock (simulation poison);
#: ``perf_counter``/``perf_counter_ns`` are deliberately NOT listed
_WALL_CLOCK_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "clock_gettime",
    "clock_gettime_ns",
}
#: datetime constructors that read the host clock
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
#: additionally poison under strict clock rules (replay paths): even a
#: benchmark-grade timer is a nondeterminism hazard inside record/replay
_WALL_CLOCK_STRICT = {"perf_counter", "perf_counter_ns", "process_time",
                      "process_time_ns", "thread_time", "thread_time_ns"}
#: path fragments whose files get the strict clock rules
_STRICT_CLOCK_PATHS = ("repro/replay",)

#: the only places allowed to touch host process machinery: the sharded
#: execution backend and the multicore sweep runner
_MP_ALLOWED_PATHS = ("repro/shard/", "repro/experiments/parallel.py")
#: os-module calls that expose host process identity/topology
_PROCESS_OS_CALLS = {"getpid", "getppid", "fork", "forkpty"}

#: numpy.random attributes that are fine (seeded-generator constructors)
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: module-level RNG calls that make *ordering* decisions — split out of
#: global-random so they carry a sharper message and suppression name
_SHUFFLE_NAMES = {"shuffle", "choice", "choices", "sample"}
_NP_SHUFFLE_NAMES = {"shuffle", "choice", "permutation", "permuted"}

#: AST nodes that build a fresh mutable object (bad as a default)
_MUTABLE_DEFAULT_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: set-producing method names (on any object — conservative is fine here,
#: these names are set-algebra specific)
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}


def _attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute chain (``a.b.c``), '' if not one."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Linter(ast.NodeVisitor):
    """One file's worth of determinism checks."""

    def __init__(
        self,
        relpath: str,
        allowed: dict,
        strict_clock: bool = False,
        mp_allowed: bool = False,
    ):
        self.relpath = relpath
        self.allowed = allowed  # lineno -> set of allowed rule names
        self.strict_clock = strict_clock
        self.mp_allowed = mp_allowed
        self.errors: list[str] = []
        #: function-local names currently known to be bound to a set
        self._set_names: list[set] = [set()]

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.allowed.get(node.lineno, ()):
            return
        self.errors.append(f"{self.relpath}:{node.lineno}: [{rule}] {message}")

    # -- rule: wall-clock ---------------------------------------------------
    def _check_wall_clock(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        leaf = chain.rsplit(".", 1)[-1]
        if chain.startswith("time.") and leaf in _WALL_CLOCK_TIME:
            self._report(
                node, "wall-clock",
                f"{chain}() reads the host clock; simulated code must use "
                "sim.now (benchmarks: time.perf_counter)",
            )
        elif (
            self.strict_clock
            and chain.startswith("time.")
            and leaf in _WALL_CLOCK_STRICT
        ):
            self._report(
                node, "wall-clock",
                f"{chain}() reads a host timer; replay code must be a pure "
                "function of the recording — use sim.now only",
            )
        elif leaf in _WALL_CLOCK_DATETIME and (
            "datetime" in chain or "date." in chain
        ):
            self._report(
                node, "wall-clock",
                f"{chain}() reads the host clock; pass timestamps in "
                "explicitly or use sim.now",
            )

    # -- rule: global-random ------------------------------------------------
    def _check_global_random(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if not chain:
            return
        parts = chain.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _SHUFFLE_NAMES:
                self._report(
                    node, "unseeded-shuffle",
                    f"{chain}() reorders/selects via the shared module-level "
                    "RNG; call it on a seeded random.Random instance",
                )
            elif parts[1] not in ("Random", "SystemRandom"):
                self._report(
                    node, "global-random",
                    f"{chain}() uses the module-level RNG; draw from a "
                    "seeded random.Random / RandomStreams instead",
                )
        elif len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
            "np", "numpy"
        ):
            if parts[-1] in _NP_SHUFFLE_NAMES:
                self._report(
                    node, "unseeded-shuffle",
                    f"{chain}() reorders/selects via numpy's global RNG; "
                    "use a numpy.random.default_rng(seed) instance",
                )
            elif parts[-1] not in _NP_RANDOM_OK:
                self._report(
                    node, "global-random",
                    f"{chain}() uses numpy's global RNG; use "
                    "numpy.random.default_rng(seed)",
                )

    # -- rule: unsorted-set-iter --------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra on a known set; dict | dict is insertion-ordered
            # (deterministic), so require a *set* on either side.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _check_iteration(self, node: ast.AST, iter_expr: ast.AST) -> None:
        if self._is_set_expr(iter_expr):
            self._report(
                node, "unsorted-set-iter",
                "iteration order of a set is hash-seed dependent; wrap it "
                "in sorted(...)",
            )

    # -- rule: process-isolation ----------------------------------------------
    def _check_process_call(self, node: ast.Call) -> None:
        if self.mp_allowed:
            return
        chain = _attr_chain(node.func)
        if chain.startswith("os.") and chain[len("os."):] in _PROCESS_OS_CALLS:
            self._report(
                node, "process-isolation",
                f"{chain}() exposes host process identity; only repro/shard "
                "and repro/experiments/parallel.py may touch process "
                "machinery — results must depend on the config, not on how "
                "the run was executed",
            )

    def _check_process_import(self, node: ast.AST, module: str) -> None:
        if self.mp_allowed:
            return
        if module == "multiprocessing" or module.startswith("multiprocessing."):
            self._report(
                node, "process-isolation",
                "multiprocessing is confined to repro/shard and "
                "repro/experiments/parallel.py (the sanctioned "
                "host-parallelism layers); model code must stay "
                "single-process deterministic",
            )

    # -- visitors ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_global_random(node)
        self._check_process_call(node)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_process_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._check_process_import(node, node.module or "")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track local names bound to set expressions so `s = a & b; for x
        # in s:` is caught too (single-scope, last-assignment-wins).
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    # -- rule: mutable-default-arg -------------------------------------------
    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args
        defaults = list(args.defaults)
        defaults.extend(d for d in args.kw_defaults if d is not None)
        for default in defaults:
            if isinstance(default, _MUTABLE_DEFAULT_NODES):
                self._report(
                    default, "mutable-default-arg",
                    "mutable default is built once at import and shared by "
                    "every call (state leaks across runs in one host "
                    "process); default to None and construct inside",
                )

    def _visit_scope(self, node: ast.AST) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "bare-except",
                "bare 'except:' hides simulator invariant violations "
                "(and GeneratorExit in coroutines); name the exception",
            )
        self.generic_visit(node)


def _allowed_lines(source: str) -> dict:
    """Map line number -> rules suppressed by ``# lint: allow-<rule>``."""
    allowed: dict = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        marker = line.rsplit("# lint:", 1)
        if len(marker) == 2:
            rules = {
                token[len("allow-"):]
                for token in marker[1].split()
                if token.startswith("allow-")
            }
            if rules:
                allowed[lineno] = rules
    return allowed


def lint_file(path: Path, root: Path) -> list[str]:
    """Lint one Python file; returns the error lines."""
    relpath = str(path.relative_to(root)) if root in path.parents else str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:  # pragma: no cover - tests would fail first
        return [f"{relpath}: syntax error: {exc}"]
    posix = relpath.replace("\\", "/")
    strict = any(fragment in posix for fragment in _STRICT_CLOCK_PATHS)
    mp_ok = any(fragment in posix for fragment in _MP_ALLOWED_PATHS)
    linter = _Linter(
        relpath, _allowed_lines(source), strict_clock=strict, mp_allowed=mp_ok
    )
    linter.visit(tree)
    return linter.errors


def lint_paths(paths: list, root: Path) -> "tuple[int, list[str]]":
    """Lint files/trees; returns (files checked, error lines)."""
    errors: list[str] = []
    checked = 0
    for target in paths:
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for py in files:
            checked += 1
            errors.extend(lint_file(py, root))
    return checked, errors


class _WiringScan(ast.NodeVisitor):
    """One file's raw material for the cross-file wiring checks."""

    def __init__(self) -> None:
        self.msgtype_refs: list = []  # (member name, lineno)
        self.registered: set = set()  # member names passed to register_service
        self.stat_keys: list = []  # (kind, key literal, lineno)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "MsgType":
            self.msgtype_refs.append((node.attr, node.lineno))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "register_service"
            and node.args
        ):
            first = node.args[0]
            if (
                isinstance(first, ast.Attribute)
                and isinstance(first.value, ast.Name)
                and first.value.id == "MsgType"
            ):
                self.registered.add(first.attr)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("counter", "tally")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.stat_keys.append((func.attr, node.args[0].value, node.lineno))
        self.generic_visit(node)


def _msgtype_refs_in(node: ast.AST) -> list:
    """Member names of every ``MsgType.X`` reference under ``node``."""
    return [
        n.attr
        for n in ast.walk(node)
        if isinstance(n, ast.Attribute)
        and isinstance(n.value, ast.Name)
        and n.value.id == "MsgType"
    ]


def _parse_messages(tree: ast.AST) -> "tuple[dict, set, int, set]":
    """Extract (members, _DATA_CLASS names, its lineno, one-way names)."""
    members: dict = {}  # member name -> lineno
    data_class: set = set()
    data_class_line = 0
    oneway: set = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MsgType":
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                ):
                    members[stmt.targets[0].id] = stmt.lineno
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            if name == "_DATA_CLASS":
                data_class = set(_msgtype_refs_in(node.value))
                data_class_line = node.lineno
            elif name == "_REQUESTS":
                # the explicit one-way notifications unioned into _REQUESTS
                oneway = set(_msgtype_refs_in(node.value))
    return members, data_class, data_class_line, oneway


def _parse_statreg(tree: ast.AST) -> "tuple[set, set]":
    """Extract the declared COUNTERS/TALLIES key sets from statreg.py."""
    registries = {"COUNTERS": set(), "TALLIES": set()}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id in registries
        ):
            registries[node.targets[0].id] = {
                n.value
                for n in ast.walk(node.value)
                if isinstance(n, ast.Constant) and isinstance(n.value, str)
            }
    return registries["COUNTERS"], registries["TALLIES"]


def lint_wiring(root: Path) -> list:
    """Cross-file protocol wiring checks over ``root/src/repro``.

    Returns error lines in the same ``path:line: [rule] message`` shape;
    ``# lint: allow-<rule>`` comments on the reported line suppress them.
    """
    src = root / "src" / "repro"
    messages_py = src / "dse" / "messages.py"
    if not messages_py.exists():
        return []
    errors: list = []

    messages_source = messages_py.read_text()
    members, data_class, data_class_line, oneway = _parse_messages(
        ast.parse(messages_source)
    )
    messages_allowed = _allowed_lines(messages_source)

    scans: dict = {}  # path -> (_WiringScan, allowed-lines map)
    for py in sorted(src.rglob("*.py")):
        source = py.read_text()
        scan = _WiringScan()
        scan.visit(ast.parse(source, filename=str(py)))
        scans[py] = (scan, _allowed_lines(source))

    def report(path: Path, lineno: int, allowed: dict, rule: str, msg: str):
        if rule not in allowed.get(lineno, ()):
            errors.append(f"{path.relative_to(root)}:{lineno}: [{rule}] {msg}")

    # unknown-msg-type: every MsgType.X anywhere must name a real member
    for py, (scan, allowed) in scans.items():
        for name, lineno in scan.msgtype_refs:
            if name not in members:
                report(
                    py, lineno, allowed, "unknown-msg-type",
                    f"MsgType.{name} is not a member of MsgType "
                    "(dse/messages.py); a typo'd type never dispatches",
                )

    # unhandled-request: every request member must reach a handler
    kernel_py = src / "dse" / "kernel.py"
    handled: set = set()
    if kernel_py in scans:
        handled.update(name for name, _ in scans[kernel_py][0].msgtype_refs)
    for scan, _ in scans.values():
        handled.update(scan.registered)
    requests = {m for m in members if m.endswith("_REQ")}
    requests.update(name for name in oneway if name in members)
    for name in sorted(requests - handled):
        report(
            messages_py, members[name], messages_allowed, "unhandled-request",
            f"MsgType.{name} is request-classified but neither dispatched "
            "in dse/kernel.py nor installed via register_service — "
            "sending it raises DSEError at runtime",
        )

    # channel-pairing: _DATA_CLASS carries _REQ/_RSP pairs together
    for name in sorted(data_class):
        partner = None
        if name.endswith("_REQ"):
            partner = name[: -len("_REQ")] + "_RSP"
        elif name.endswith("_RSP"):
            partner = name[: -len("_RSP")] + "_REQ"
        if partner in members and partner not in data_class:
            report(
                messages_py, data_class_line, messages_allowed,
                "channel-pairing",
                f"_DATA_CLASS routes MsgType.{name} over the unreliable "
                f"lane but not its pair MsgType.{partner}; a request and "
                "its response must ride the same channel",
            )

    # unknown-stat-key: counter/tally literals vs the declared registry
    statreg_py = src / "sim" / "statreg.py"
    if statreg_py.exists():
        counters, tallies = _parse_statreg(ast.parse(statreg_py.read_text()))
        for py, (scan, allowed) in scans.items():
            for kind, key, lineno in scan.stat_keys:
                registry = counters if kind == "counter" else tallies
                if key not in registry:
                    report(
                        py, lineno, allowed, "unknown-stat-key",
                        f".{kind}({key!r}) is not declared in "
                        "repro/sim/statreg.py; a typo'd key silently "
                        "creates a fresh zero counter",
                    )
    return errors


def main(argv: list) -> int:
    root = Path(__file__).resolve().parents[1]
    targets = (
        [Path(a).resolve() for a in argv[1:]]
        if len(argv) > 1
        else [root / "src" / "repro"]
    )
    checked, errors = lint_paths(targets, root)
    errors.extend(lint_wiring(root))
    for err in errors:
        print(err)
    print(f"determinism lint: {checked} files checked, {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
