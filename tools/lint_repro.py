#!/usr/bin/env python3
"""Determinism lint for the simulator kernel (static analysis, stdlib ast).

The whole repository's value rests on one property: a run is a pure
function of its :class:`ClusterConfig` (seed included).  This lint
rejects the constructs that silently break that property:

    python tools/lint_repro.py [paths...]        # default: src/repro

Rules (all reported as ``path:line: [rule] message``):

* **wall-clock** — ``time.time()``, ``time.time_ns()``,
  ``time.monotonic()``, ``datetime.now()`` and friends inject host time
  into the simulation.  ``time.perf_counter`` stays allowed: benchmarks
  measure real wall duration, they never feed it back into simulated
  state.  Exception: inside ``repro/replay`` even ``perf_counter`` /
  ``perf_counter_ns`` are flagged — record/replay must be a pure function
  of the recording, so *any* host-clock read there is a divergence bug.
* **global-random** — module-level ``random.random()`` /
  ``np.random.rand()`` etc. draw from cross-run shared state; all
  randomness must flow through seeded generators
  (``random.Random(seed)``, ``numpy.random.default_rng(seed)``, the
  repo's ``RandomStreams``).
* **unsorted-set-iter** — iterating a ``set``/``frozenset`` (or ``dict``
  built from one) has hash-seed-dependent order; when that order feeds
  event scheduling or message emission, two identical runs diverge.
  Wrap the iterable in ``sorted(...)``.
* **bare-except** — ``except:`` swallows simulator invariant violations
  (including ``GeneratorExit`` in coroutines); name the exception.

Suppress a deliberate use with a ``# lint: allow-<rule>`` comment on the
offending line (e.g. ``# lint: allow-wall-clock``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: time-module attributes that read the host clock (simulation poison);
#: ``perf_counter``/``perf_counter_ns`` are deliberately NOT listed
_WALL_CLOCK_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "clock_gettime",
    "clock_gettime_ns",
}
#: datetime constructors that read the host clock
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
#: additionally poison under strict clock rules (replay paths): even a
#: benchmark-grade timer is a nondeterminism hazard inside record/replay
_WALL_CLOCK_STRICT = {"perf_counter", "perf_counter_ns", "process_time",
                      "process_time_ns", "thread_time", "thread_time_ns"}
#: path fragments whose files get the strict clock rules
_STRICT_CLOCK_PATHS = ("repro/replay",)

#: numpy.random attributes that are fine (seeded-generator constructors)
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: set-producing method names (on any object — conservative is fine here,
#: these names are set-algebra specific)
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}


def _attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute chain (``a.b.c``), '' if not one."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Linter(ast.NodeVisitor):
    """One file's worth of determinism checks."""

    def __init__(self, relpath: str, allowed: dict, strict_clock: bool = False):
        self.relpath = relpath
        self.allowed = allowed  # lineno -> set of allowed rule names
        self.strict_clock = strict_clock
        self.errors: list[str] = []
        #: function-local names currently known to be bound to a set
        self._set_names: list[set] = [set()]

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.allowed.get(node.lineno, ()):
            return
        self.errors.append(f"{self.relpath}:{node.lineno}: [{rule}] {message}")

    # -- rule: wall-clock ---------------------------------------------------
    def _check_wall_clock(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        leaf = chain.rsplit(".", 1)[-1]
        if chain.startswith("time.") and leaf in _WALL_CLOCK_TIME:
            self._report(
                node, "wall-clock",
                f"{chain}() reads the host clock; simulated code must use "
                "sim.now (benchmarks: time.perf_counter)",
            )
        elif (
            self.strict_clock
            and chain.startswith("time.")
            and leaf in _WALL_CLOCK_STRICT
        ):
            self._report(
                node, "wall-clock",
                f"{chain}() reads a host timer; replay code must be a pure "
                "function of the recording — use sim.now only",
            )
        elif leaf in _WALL_CLOCK_DATETIME and (
            "datetime" in chain or "date." in chain
        ):
            self._report(
                node, "wall-clock",
                f"{chain}() reads the host clock; pass timestamps in "
                "explicitly or use sim.now",
            )

    # -- rule: global-random ------------------------------------------------
    def _check_global_random(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if not chain:
            return
        parts = chain.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in ("Random", "SystemRandom"):
                self._report(
                    node, "global-random",
                    f"{chain}() uses the module-level RNG; draw from a "
                    "seeded random.Random / RandomStreams instead",
                )
        elif len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
            "np", "numpy"
        ):
            if parts[-1] not in _NP_RANDOM_OK:
                self._report(
                    node, "global-random",
                    f"{chain}() uses numpy's global RNG; use "
                    "numpy.random.default_rng(seed)",
                )

    # -- rule: unsorted-set-iter --------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra on a known set; dict | dict is insertion-ordered
            # (deterministic), so require a *set* on either side.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def _check_iteration(self, node: ast.AST, iter_expr: ast.AST) -> None:
        if self._is_set_expr(iter_expr):
            self._report(
                node, "unsorted-set-iter",
                "iteration order of a set is hash-seed dependent; wrap it "
                "in sorted(...)",
            )

    # -- visitors ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_global_random(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track local names bound to set expressions so `s = a & b; for x
        # in s:` is caught too (single-scope, last-assignment-wins).
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def _visit_scope(self, node: ast.AST) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "bare-except",
                "bare 'except:' hides simulator invariant violations "
                "(and GeneratorExit in coroutines); name the exception",
            )
        self.generic_visit(node)


def _allowed_lines(source: str) -> dict:
    """Map line number -> rules suppressed by ``# lint: allow-<rule>``."""
    allowed: dict = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        marker = line.rsplit("# lint:", 1)
        if len(marker) == 2:
            rules = {
                token[len("allow-"):]
                for token in marker[1].split()
                if token.startswith("allow-")
            }
            if rules:
                allowed[lineno] = rules
    return allowed


def lint_file(path: Path, root: Path) -> list[str]:
    """Lint one Python file; returns the error lines."""
    relpath = str(path.relative_to(root)) if root in path.parents else str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:  # pragma: no cover - tests would fail first
        return [f"{relpath}: syntax error: {exc}"]
    posix = relpath.replace("\\", "/")
    strict = any(fragment in posix for fragment in _STRICT_CLOCK_PATHS)
    linter = _Linter(relpath, _allowed_lines(source), strict_clock=strict)
    linter.visit(tree)
    return linter.errors


def lint_paths(paths: list, root: Path) -> "tuple[int, list[str]]":
    """Lint files/trees; returns (files checked, error lines)."""
    errors: list[str] = []
    checked = 0
    for target in paths:
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for py in files:
            checked += 1
            errors.extend(lint_file(py, root))
    return checked, errors


def main(argv: list) -> int:
    root = Path(__file__).resolve().parents[1]
    targets = (
        [Path(a).resolve() for a in argv[1:]]
        if len(argv) > 1
        else [root / "src" / "repro"]
    )
    checked, errors = lint_paths(targets, root)
    for err in errors:
        print(err)
    print(f"determinism lint: {checked} files checked, {len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
