#!/usr/bin/env python3
"""Documentation lint: markdown link check + docstring-presence check.

Stdlib only, so CI (and anyone) can run it without installing anything:

    python tools/check_docs.py [repo-root]

Two checks, both fail the build on violations:

1. **Markdown links** — every relative link or image target in
   ``docs/*.md`` and ``README.md`` must resolve to an existing file or
   directory (anchors and external ``http(s):``/``mailto:`` targets are
   not checked).
2. **Docstring presence** — every public module and public class in
   ``src/repro`` (name not starting with ``_``) must carry a docstring.
   The public surface documented in ``docs/api.md`` defers to docstrings
   for full signatures, so they have to exist.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: inline links/images: [text](target) — target captured up to ) or space
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")
_FENCE_RE = re.compile(r"^(```|~~~)")


def iter_markdown(root: Path):
    yield root / "README.md"
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_links(root: Path) -> list[str]:
    errors = []
    for md in iter_markdown(root):
        if not md.exists():
            errors.append(f"{md.relative_to(root)}: file listed for checking is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if _FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            line = re.sub(r"`[^`]*`", "", line)  # inline code is not a link
            for target in _LINK_RE.findall(line):
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: broken link -> {target}"
                    )
    return errors


def _missing_docstrings(tree: ast.Module, relpath: str) -> list[str]:
    errors = []
    if ast.get_docstring(tree) is None:
        errors.append(f"{relpath}:1: public module has no docstring")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            errors.append(
                f"{relpath}:{node.lineno}: public class "
                f"'{node.name}' has no docstring"
            )
    return errors


def check_docstrings(root: Path) -> list[str]:
    errors = []
    src = root / "src" / "repro"
    for py in sorted(src.rglob("*.py")):
        relpath = str(py.relative_to(root))
        if py.name.startswith("_") and py.name != "__init__.py":
            continue
        try:
            tree = ast.parse(py.read_text(), filename=relpath)
        except SyntaxError as exc:  # pragma: no cover - would fail tests anyway
            errors.append(f"{relpath}: syntax error: {exc}")
            continue
        errors.extend(_missing_docstrings(tree, relpath))
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    link_errors = check_links(root)
    doc_errors = check_docstrings(root)
    for err in link_errors + doc_errors:
        print(err)
    n_md = sum(1 for _ in iter_markdown(root))
    print(
        f"checked {n_md} markdown files "
        f"({len(link_errors)} broken links), "
        f"docstrings in src/repro ({len(doc_errors)} missing)"
    )
    return 1 if (link_errors or doc_errors) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
