#!/usr/bin/env python3
"""Documentation lint: link check, docstring check, and doc execution.

Stdlib only, so CI (and anyone) can run it without installing anything
(doc execution runs the repo's own examples, which may import numpy):

    python tools/check_docs.py [repo-root] [--no-exec]

Three checks, all fail the build on violations:

1. **Markdown links** — every relative link or image target in
   ``docs/*.md`` and ``README.md`` must resolve to an existing file or
   directory (anchors and external ``http(s):``/``mailto:`` targets are
   not checked).
2. **Docstring presence** — every public module and public class in
   ``src/repro`` (name not starting with ``_``) must carry a docstring.
   The public surface documented in ``docs/api.md`` defers to docstrings
   for full signatures, so they have to exist.
3. **Doc execution** — every fenced code block whose info string is
   exactly ``python`` is executable documentation.  Per file, the blocks
   are concatenated top-to-bottom (pages build examples cumulatively)
   and run as one script in a scratch directory with ``PYTHONPATH=src``;
   a non-zero exit fails the lint.  Illustrative fragments opt out by
   tagging the fence ``python snippet``.  Skip the whole check (e.g. in
   an environment without numpy) with ``--no-exec``.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

#: inline links/images: [text](target) — target captured up to ) or space
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")
_FENCE_RE = re.compile(r"^(```|~~~)")


def iter_markdown(root: Path):
    yield root / "README.md"
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_links(root: Path) -> list[str]:
    errors = []
    for md in iter_markdown(root):
        if not md.exists():
            errors.append(f"{md.relative_to(root)}: file listed for checking is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if _FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            line = re.sub(r"`[^`]*`", "", line)  # inline code is not a link
            for target in _LINK_RE.findall(line):
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: broken link -> {target}"
                    )
    return errors


def _missing_docstrings(tree: ast.Module, relpath: str) -> list[str]:
    errors = []
    if ast.get_docstring(tree) is None:
        errors.append(f"{relpath}:1: public module has no docstring")
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            errors.append(
                f"{relpath}:{node.lineno}: public class "
                f"'{node.name}' has no docstring"
            )
    return errors


def check_docstrings(root: Path) -> list[str]:
    errors = []
    src = root / "src" / "repro"
    for py in sorted(src.rglob("*.py")):
        relpath = str(py.relative_to(root))
        if py.name.startswith("_") and py.name != "__init__.py":
            continue
        try:
            tree = ast.parse(py.read_text(), filename=relpath)
        except SyntaxError as exc:  # pragma: no cover - would fail tests anyway
            errors.append(f"{relpath}: syntax error: {exc}")
            continue
        errors.extend(_missing_docstrings(tree, relpath))
    return errors


def extract_python_blocks(md: Path) -> list[tuple[int, str]]:
    """``(first_lineno, code)`` for each fence tagged exactly ``python``."""
    blocks: list[tuple[int, str]] = []
    fence_tag: str | None = None  # info string of the fence we are inside
    start = 0
    lines: list[str] = []
    for lineno, line in enumerate(md.read_text().splitlines(), 1):
        stripped = line.strip()
        if _FENCE_RE.match(stripped):
            if fence_tag is None:
                fence_tag = stripped.lstrip("`~").strip()
                start = lineno + 1
                lines = []
            else:
                if fence_tag == "python":
                    blocks.append((start, "\n".join(lines)))
                fence_tag = None
            continue
        if fence_tag is not None:
            lines.append(line)
    return blocks


def check_doc_execution(root: Path) -> tuple[list[str], int]:
    """Run each page's ``python`` fences as one cumulative script."""
    errors: list[str] = []
    n_blocks = 0
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    for md in iter_markdown(root):
        if not md.exists():
            continue
        blocks = extract_python_blocks(md)
        if not blocks:
            continue
        n_blocks += len(blocks)
        relpath = md.relative_to(root)
        # One script per page: later blocks may use earlier blocks' names
        # (tutorials define a worker, then run it).  Line directives keep
        # tracebacks pointing at the markdown source.
        script = "\n".join(
            f"# --- {relpath} fence at line {lineno} ---\n{code}"
            for lineno, code in blocks
        )
        with tempfile.TemporaryDirectory(prefix="docexec-") as scratch:
            path = Path(scratch) / f"{md.stem}_doc.py"
            path.write_text(script + "\n")
            proc = subprocess.run(
                [sys.executable, str(path)],
                cwd=scratch,  # examples that write files stay out of the repo
                env=env,
                capture_output=True,
                text=True,
                timeout=600,
            )
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout).strip().splitlines()[-12:]
            errors.append(
                f"{relpath}: python examples failed (exit {proc.returncode}, "
                f"{len(blocks)} blocks):\n    " + "\n    ".join(tail)
            )
    return errors, n_blocks


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--no-exec"]
    run_exec = "--no-exec" not in argv
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parents[1]
    link_errors = check_links(root)
    doc_errors = check_docstrings(root)
    exec_errors: list[str] = []
    n_blocks = 0
    if run_exec:
        exec_errors, n_blocks = check_doc_execution(root)
    for err in link_errors + doc_errors + exec_errors:
        print(err)
    n_md = sum(1 for _ in iter_markdown(root))
    print(
        f"checked {n_md} markdown files "
        f"({len(link_errors)} broken links), "
        f"docstrings in src/repro ({len(doc_errors)} missing), "
        + (
            f"executed {n_blocks} python doc blocks ({len(exec_errors)} pages failed)"
            if run_exec
            else "doc execution skipped (--no-exec)"
        )
    )
    return 1 if (link_errors or doc_errors or exec_errors) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
